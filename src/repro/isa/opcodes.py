"""Opcode definitions for the reproduction's RISC-like instruction set.

The paper ran SPEC95 binaries compiled for a Sun SPARC machine.  The value
prediction mechanisms it studies only observe three things about an
instruction: its *address*, its *category* (integer ALU, FP computation,
integer load, FP load) and the *destination value* it produces.  This module
defines a small register-based RISC ISA that exposes exactly that surface.

Opcode categories drive two things downstream:

* which instructions are *value-prediction candidates* (instructions that
  write a computed value to a destination register — see
  :func:`Opcode.is_prediction_candidate`), matching the paper's "we only
  refer to instructions which write a computed value to a destination
  register";
* the row grouping of Table 2.1 (integer ALU / loads / FP computation /
  FP loads).
"""

from __future__ import annotations

import enum


class Category(enum.Enum):
    """Coarse instruction classes used by the paper's measurements."""

    INT_ALU = "int_alu"
    FP_ALU = "fp_alu"
    INT_LOAD = "int_load"
    FP_LOAD = "fp_load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"
    MISC = "misc"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Category.{self.name}"


class Opcode(enum.Enum):
    """Every operation the functional simulator can execute.

    The enum *value* is the assembler mnemonic.
    """

    # Integer ALU, register-register.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"          # truncating toward zero, like C
    MOD = "mod"          # sign follows the dividend, like C
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"          # arithmetic right shift
    SLT = "slt"          # set if less-than (signed)
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    # Integer ALU, register-immediate.
    ADDI = "addi"
    SUBI = "subi"
    MULI = "muli"
    DIVI = "divi"
    MODI = "modi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    SLTI = "slti"
    SLEI = "slei"
    SEQI = "seqi"
    SNEI = "snei"
    LI = "li"            # load immediate
    MOV = "mov"
    NEG = "neg"
    NOT = "not"          # logical not (result 0/1)
    # Floating point computation.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FLI = "fli"          # load FP immediate
    FMOV = "fmov"
    FSLT = "fslt"        # FP compares produce integer 0/1
    FSLE = "fsle"
    FSEQ = "fseq"
    FSNE = "fsne"
    CVTIF = "cvtif"      # int -> float
    CVTFI = "cvtfi"      # float -> int (truncate)
    # Memory.
    LD = "ld"            # integer load:   rd <- mem[rs + imm]
    ST = "st"            # integer store:  mem[rs + imm] <- rt
    FLD = "fld"          # FP load
    FST = "fst"          # FP store
    # Control.
    BEQZ = "beqz"        # branch if rs == 0
    BNEZ = "bnez"        # branch if rs != 0
    JMP = "jmp"
    CALL = "call"        # ra <- pc + 1 ; pc <- target
    JR = "jr"            # pc <- rs (function return)
    # Miscellaneous / environment.
    IN = "in"            # rd <- next value from the run's input stream
    FIN = "fin"          # rd <- next value from the input stream, as float
    OUT = "out"          # append rs to the run's output
    PHASE = "phase"      # mark execution phase (init=1 / computation=2)
    NOP = "nop"
    HALT = "halt"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Opcode.{self.name}"

    @property
    def category(self) -> Category:
        """The instruction class this opcode belongs to."""
        return _CATEGORY[self]

    @property
    def writes_register(self) -> bool:
        """Whether the opcode produces a destination-register value."""
        return self in _WRITES_REGISTER

    @property
    def is_prediction_candidate(self) -> bool:
        """Whether the paper's mechanisms would consider predicting it.

        The paper predicts destination values of register-writing
        instructions: integer ALU results, FP results and loaded values.
        Moves of constants and register copies compute nothing new but do
        write registers; they stay candidates (their values are trivially
        last-value predictable, just as SPARC ``mov`` was in the original
        traces).  Calls write the return-address register but are excluded,
        as are environment reads (``in``), which have no computed value.
        """
        return self.category in _PREDICTABLE_CATEGORIES

    @property
    def reads_memory(self) -> bool:
        return self in (Opcode.LD, Opcode.FLD)

    @property
    def writes_memory(self) -> bool:
        return self in (Opcode.ST, Opcode.FST)

    @property
    def is_control(self) -> bool:
        return self.category in (
            Category.BRANCH,
            Category.JUMP,
            Category.CALL,
            Category.RETURN,
        )


_PREDICTABLE_CATEGORIES = frozenset(
    {Category.INT_ALU, Category.FP_ALU, Category.INT_LOAD, Category.FP_LOAD}
)

_INT_ALU_OPS = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.DIVI, Opcode.MODI,
    Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI,
    Opcode.SLTI, Opcode.SLEI, Opcode.SEQI, Opcode.SNEI,
    Opcode.LI, Opcode.MOV, Opcode.NEG, Opcode.NOT, Opcode.CVTFI,
)

_FP_ALU_OPS = (
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
    Opcode.FLI, Opcode.FMOV, Opcode.FSLT, Opcode.FSLE, Opcode.FSEQ,
    Opcode.FSNE, Opcode.CVTIF,
)

_CATEGORY: dict[Opcode, Category] = {}
_CATEGORY.update({op: Category.INT_ALU for op in _INT_ALU_OPS})
_CATEGORY.update({op: Category.FP_ALU for op in _FP_ALU_OPS})
_CATEGORY.update(
    {
        Opcode.LD: Category.INT_LOAD,
        Opcode.FLD: Category.FP_LOAD,
        Opcode.ST: Category.STORE,
        Opcode.FST: Category.STORE,
        Opcode.BEQZ: Category.BRANCH,
        Opcode.BNEZ: Category.BRANCH,
        Opcode.JMP: Category.JUMP,
        Opcode.CALL: Category.CALL,
        Opcode.JR: Category.RETURN,
        Opcode.IN: Category.MISC,
        Opcode.FIN: Category.MISC,
        Opcode.OUT: Category.MISC,
        Opcode.PHASE: Category.MISC,
        Opcode.NOP: Category.MISC,
        Opcode.HALT: Category.MISC,
    }
)

_WRITES_REGISTER = frozenset(
    set(_INT_ALU_OPS)
    | set(_FP_ALU_OPS)
    | {Opcode.LD, Opcode.FLD, Opcode.IN, Opcode.FIN, Opcode.CALL}
)

#: Mnemonic -> Opcode lookup used by the assembler.
MNEMONICS: dict[str, Opcode] = {op.value: op for op in Opcode}


def opcode_from_mnemonic(mnemonic: str) -> Opcode:
    """Return the opcode for ``mnemonic``, case-insensitively.

    Raises:
        KeyError: if the mnemonic names no opcode.
    """
    return MNEMONICS[mnemonic.lower()]
