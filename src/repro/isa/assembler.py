"""A two-pass assembler for the reproduction ISA's textual format.

The format (also produced by :mod:`repro.isa.disassembler`)::

    ; line comment
    .name my_program
    .data
    table: 0 1 2 3          ; words at consecutive data addresses
    seed:  42
    .text
    loop:
        ld   r1, gp, 0
        addi r1, r1, 1
        st   r1, gp, 0
        bnez r1, loop
        add.s r2, r1, r1    ; ".s" = stride directive, ".lv" = last-value
        halt

Branch/jump/call targets may be labels or absolute ``@addr`` references.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .directives import SUFFIXES, Directive
from .formats import FLOAT_IMMEDIATE, FORMATS
from .instruction import Instruction, Number
from .opcodes import Opcode, opcode_from_mnemonic
from .program import Program, build_program
from .registers import parse_register


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _strip_comment(line: str) -> str:
    index = line.find(";")
    if index >= 0:
        return line[:index]
    return line


def _parse_number(text: str, line_number: int) -> Number:
    try:
        if any(ch in text for ch in ".eE") and not text.lstrip("+-").isdigit():
            return float(text)
        return int(text, 0)
    except ValueError:
        raise AssemblerError(line_number, f"invalid numeric literal {text!r}") from None


def _split_mnemonic(word: str, line_number: int) -> Tuple[Opcode, Optional[Directive]]:
    base, dot, suffix = word.partition(".")
    directive = None
    if dot:
        if suffix not in SUFFIXES:
            raise AssemblerError(line_number, f"unknown directive suffix {suffix!r}")
        directive = SUFFIXES[suffix]
    try:
        opcode = opcode_from_mnemonic(base)
    except KeyError:
        raise AssemblerError(line_number, f"unknown mnemonic {base!r}") from None
    if directive is not None and not opcode.is_prediction_candidate:
        raise AssemblerError(
            line_number, f"{base!r} cannot carry a value-prediction directive"
        )
    return opcode, directive


class _PendingInstruction:
    """An instruction whose target may still be an unresolved label."""

    __slots__ = ("opcode", "directive", "dest", "srcs", "imm", "target", "line")

    def __init__(self, line_number: int) -> None:
        self.opcode: Optional[Opcode] = None
        self.directive: Optional[Directive] = None
        self.dest: Optional[int] = None
        self.srcs: List[int] = []
        self.imm: Optional[Number] = None
        self.target: Optional[object] = None  # int or unresolved label str
        self.line = line_number


def assemble(source: str, name: str = "<asm>") -> Program:
    """Assemble ``source`` into a :class:`Program`.

    Raises:
        AssemblerError: on any syntax or semantic error, with line number.
    """
    code_labels: Dict[str, int] = {}
    data_symbols: Dict[str, int] = {}
    data: Dict[int, Number] = {}
    pending: List[_PendingInstruction] = []
    section = ".text"
    program_name = name
    next_data_address = 0

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("."):
            if line.split(None, 1)[0] == ".org":
                next_data_address = _parse_org(line, line_number)
                continue
            section, program_name = _handle_dot_line(
                line, line_number, section, program_name
            )
            continue
        label, has_label, rest = _take_label(line)
        if has_label:
            if section == ".text":
                if label in code_labels:
                    raise AssemblerError(line_number, f"duplicate label {label!r}")
                code_labels[label] = len(pending)
            else:
                if label in data_symbols:
                    raise AssemblerError(line_number, f"duplicate symbol {label!r}")
                data_symbols[label] = next_data_address
            line = rest.strip()
            if not line:
                continue
        if section == ".data":
            for word in line.split():
                data[next_data_address] = _parse_number(word, line_number)
                next_data_address += 1
        else:
            pending.append(_parse_instruction(line, line_number))

    instructions = [
        _resolve(entry, code_labels, len(pending)) for entry in pending
    ]
    return build_program(
        instructions,
        data=data,
        symbols=data_symbols,
        labels=code_labels,
        name=program_name,
    )


def _handle_dot_line(
    line: str, line_number: int, section: str, program_name: str
) -> Tuple[str, str]:
    parts = line.split(None, 1)
    keyword = parts[0]
    if keyword in (".data", ".text"):
        return keyword, program_name
    if keyword == ".name":
        if len(parts) != 2:
            raise AssemblerError(line_number, ".name requires a value")
        return section, parts[1].strip()
    raise AssemblerError(line_number, f"unknown directive {keyword!r}")


def _parse_org(line: str, line_number: int) -> int:
    parts = line.split()
    if len(parts) != 2:
        raise AssemblerError(line_number, ".org requires one address")
    address = _parse_number(parts[1], line_number)
    if not isinstance(address, int) or address < 0:
        raise AssemblerError(line_number, ".org address must be a non-negative int")
    return address


def _take_label(line: str) -> Tuple[str, bool, str]:
    colon = line.find(":")
    if colon < 0:
        return "", False, line
    candidate = line[:colon].strip()
    if candidate and all(ch.isalnum() or ch == "_" for ch in candidate):
        return candidate, True, line[colon + 1 :]
    return "", False, line


def _parse_instruction(line: str, line_number: int) -> _PendingInstruction:
    parts = line.replace(",", " ").split()
    opcode, directive = _split_mnemonic(parts[0], line_number)
    operands = parts[1:]
    signature = FORMATS[opcode]
    if len(operands) != len(signature):
        raise AssemblerError(
            line_number,
            f"{opcode.value} expects {len(signature)} operand(s), "
            f"got {len(operands)}",
        )
    entry = _PendingInstruction(line_number)
    entry.opcode = opcode
    entry.directive = directive
    for kind, text in zip(signature, operands):
        if kind == "d":
            entry.dest = _parse_register_operand(text, line_number)
        elif kind == "s":
            entry.srcs.append(_parse_register_operand(text, line_number))
        elif kind == "i":
            value = _parse_number(text, line_number)
            if opcode in FLOAT_IMMEDIATE:
                value = float(value)
            entry.imm = value
        else:  # "t"
            if text.startswith("@"):
                entry.target = int(text[1:])
            else:
                entry.target = text
    return entry


def _parse_register_operand(text: str, line_number: int) -> int:
    try:
        return parse_register(text)
    except ValueError as error:
        raise AssemblerError(line_number, str(error)) from None


def _resolve(
    entry: _PendingInstruction, labels: Dict[str, int], code_size: int
) -> Instruction:
    target = entry.target
    if isinstance(target, str):
        if target not in labels:
            raise AssemblerError(entry.line, f"undefined label {target!r}")
        target = labels[target]
    if isinstance(target, int) and not 0 <= target < code_size:
        raise AssemblerError(entry.line, f"target @{target} out of range")
    return Instruction(
        opcode=entry.opcode,
        dest=entry.dest,
        srcs=tuple(entry.srcs),
        imm=entry.imm,
        target=target,
        directive=entry.directive,
    )
