"""The :class:`Program` container — the reproduction's "binary executable".

A program is an addressed sequence of instructions plus an initial data
image.  Instruction addresses are word indices (0, 1, 2, ...), matching the
way the paper's profile image keys information by instruction address.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .directives import Directive
from .instruction import Instruction, Number
from .opcodes import Opcode


class ProgramError(ValueError):
    """Raised when a program fails validation."""


@dataclasses.dataclass(frozen=True)
class Program:
    """An executable image for the functional simulator.

    Attributes:
        instructions: the code segment; ``instructions[a]`` is at address
            ``a``.
        data: initial data-memory image, address -> value.
        symbols: optional name -> data-address map for globals (debugging
            and test convenience).
        labels: optional name -> code-address map (assembler output).
        name: human-readable program name.
    """

    instructions: Tuple[Instruction, ...]
    data: Mapping[int, Number] = dataclasses.field(default_factory=dict)
    symbols: Mapping[str, int] = dataclasses.field(default_factory=dict)
    labels: Mapping[str, int] = dataclasses.field(default_factory=dict)
    name: str = "<anonymous>"

    def __post_init__(self) -> None:
        object.__setattr__(self, "instructions", tuple(self.instructions))
        self._validate()

    def _validate(self) -> None:
        limit = len(self.instructions)
        for address, instruction in enumerate(self.instructions):
            target = instruction.target
            if instruction.opcode.is_control and instruction.opcode is not Opcode.JR:
                if target is None:
                    raise ProgramError(
                        f"@{address}: {instruction.opcode.value} lacks a target"
                    )
                if not 0 <= target < limit:
                    raise ProgramError(
                        f"@{address}: target {target} outside [0, {limit})"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, address: int) -> Instruction:
        return self.instructions[address]

    @property
    def candidate_addresses(self) -> List[int]:
        """Addresses of all value-prediction candidate instructions."""
        return [
            address
            for address, instruction in enumerate(self.instructions)
            if instruction.is_prediction_candidate
        ]

    def directives(self) -> Dict[int, Directive]:
        """Return address -> directive for every tagged instruction."""
        return {
            address: instruction.directive
            for address, instruction in enumerate(self.instructions)
            if instruction.directive is not None
        }

    def with_directives(
        self, directive_map: Mapping[int, Optional[Directive]]
    ) -> "Program":
        """Return a new program with directives applied per ``directive_map``.

        Addresses absent from the map keep their existing directive.  This
        is the only transformation phase 3 of the methodology is allowed to
        perform: no instruction is moved, added or removed.

        Raises:
            ProgramError: if a mapped address is out of range or names an
                instruction that cannot carry a directive (not a
                value-prediction candidate).
        """
        limit = len(self.instructions)
        for address, directive in directive_map.items():
            if not 0 <= address < limit:
                raise ProgramError(f"directive address {address} out of range")
            if directive is not None and not self.instructions[
                address
            ].is_prediction_candidate:
                raise ProgramError(
                    f"@{address}: {self.instructions[address]} is not a "
                    "value-prediction candidate; it cannot carry a directive"
                )
        new_instructions = [
            instruction.with_directive(directive_map[address])
            if address in directive_map
            else instruction
            for address, instruction in enumerate(self.instructions)
        ]
        return dataclasses.replace(self, instructions=tuple(new_instructions))

    def strip_directives(self) -> "Program":
        """Return a copy of the program with every directive removed."""
        return self.with_directives(
            {address: None for address in range(len(self.instructions))}
        )


def build_program(
    instructions: Sequence[Instruction],
    data: Optional[Mapping[int, Number]] = None,
    symbols: Optional[Mapping[str, int]] = None,
    labels: Optional[Mapping[str, int]] = None,
    name: str = "<anonymous>",
) -> Program:
    """Convenience constructor mirroring :class:`Program` with defaults."""
    return Program(
        instructions=tuple(instructions),
        data=dict(data or {}),
        symbols=dict(symbols or {}),
        labels=dict(labels or {}),
        name=name,
    )
