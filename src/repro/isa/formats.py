"""Operand-format signatures for each opcode.

Shared by the assembler (parsing), the disassembler (rendering) and the
executor (operand validation).  A signature is a string over:

* ``d`` — destination register
* ``s`` — source register
* ``i`` — immediate (int or float depending on opcode)
* ``t`` — code target (label or ``@addr``)
"""

from __future__ import annotations

from .opcodes import Opcode

FORMATS: dict[Opcode, str] = {}

_TRIPLE = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FSLT, Opcode.FSLE, Opcode.FSEQ, Opcode.FSNE,
)
_IMMEDIATE = (
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.DIVI, Opcode.MODI,
    Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI,
    Opcode.SLTI, Opcode.SLEI, Opcode.SEQI, Opcode.SNEI,
)
_UNARY = (
    Opcode.MOV, Opcode.NEG, Opcode.NOT,
    Opcode.FMOV, Opcode.FNEG, Opcode.CVTIF, Opcode.CVTFI,
)

FORMATS.update({op: "dss" for op in _TRIPLE})
FORMATS.update({op: "dsi" for op in _IMMEDIATE})
FORMATS.update({op: "ds" for op in _UNARY})
FORMATS.update(
    {
        Opcode.LI: "di",
        Opcode.FLI: "di",
        Opcode.LD: "dsi",
        Opcode.FLD: "dsi",
        Opcode.ST: "ssi",   # value register, address register, offset
        Opcode.FST: "ssi",
        Opcode.BEQZ: "st",
        Opcode.BNEZ: "st",
        Opcode.JMP: "t",
        Opcode.CALL: "t",
        Opcode.JR: "s",
        Opcode.IN: "d",
        Opcode.FIN: "d",
        Opcode.OUT: "s",
        Opcode.PHASE: "i",
        Opcode.NOP: "",
        Opcode.HALT: "",
    }
)

#: Opcodes whose immediate operand is a float.
FLOAT_IMMEDIATE = frozenset({Opcode.FLI})

assert set(FORMATS) == set(Opcode), "every opcode needs an operand format"
