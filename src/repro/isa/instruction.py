"""The :class:`Instruction` record.

Instructions are immutable value objects.  The phase-3 annotator never
mutates a program in place; it builds a new one with re-tagged instructions
(see :mod:`repro.annotate`), mirroring the paper's constraint that phase 3
"only inserts directives in the opcode" and performs no code motion.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from .directives import Directive
from .opcodes import Category, Opcode
from .registers import register_name

Number = Union[int, float]


@dataclasses.dataclass(frozen=True, slots=True)
class Instruction:
    """One machine instruction.

    Attributes:
        opcode: the operation.
        dest: destination register index, or ``None``.
        srcs: source register indices (0, 1 or 2 of them).
        imm: immediate operand (int or float), or ``None``.
        target: branch/jump/call target address, or ``None``.  Targets are
            resolved instruction addresses; the assembler resolves labels.
        directive: value-predictability hint, or ``None``.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[Number] = None
    target: Optional[int] = None
    directive: Optional[Directive] = None

    @property
    def category(self) -> Category:
        return self.opcode.category

    @property
    def writes_register(self) -> bool:
        return self.opcode.writes_register

    @property
    def is_prediction_candidate(self) -> bool:
        return self.opcode.is_prediction_candidate

    def with_directive(self, directive: Optional[Directive]) -> "Instruction":
        """Return a copy of this instruction carrying ``directive``."""
        return dataclasses.replace(self, directive=directive)

    def render(self) -> str:
        """Return the canonical assembler text of this instruction."""
        mnemonic = self.opcode.value
        if self.directive is not None:
            suffix = {Directive.STRIDE: "s", Directive.LAST_VALUE: "lv"}
            mnemonic = f"{mnemonic}.{suffix[self.directive]}"
        operands = []
        if self.dest is not None:
            operands.append(register_name(self.dest))
        operands.extend(register_name(src) for src in self.srcs)
        if self.imm is not None:
            operands.append(repr(self.imm))
        if self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            return f"{mnemonic} " + ", ".join(operands)
        return mnemonic

    def __str__(self) -> str:
        return self.render()
