"""The hybrid predictor: spend stride fields only where they pay.

The paper observes (Section 3.1) that stride-patterned instructions are a
small subset; a unified stride table wastes its stride field on the large
last-value-repeating majority.  With directives available, a *hybrid*
organization — a small stride table plus a larger, cheaper last-value
table — recovers nearly all of the unified table's coverage.

This example compares, for one workload under profile classification,
three equal-capacity organizations:

* unified stride, 512 entries (2 fields per entry),
* hybrid 128-entry stride + 384-entry last-value,
* unified last-value, 512 entries (1 field per entry).

Run with: ``python examples/hybrid_predictor.py [workload] [scale]``
"""

import sys

from repro import (
    AnnotationPolicy,
    Directive,
    HybridPredictor,
    LastValuePredictor,
    PredictionEngine,
    ProfileClassification,
    StridePredictor,
    run_methodology,
)
from repro.core import simulate_prediction_many
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "132.ijpeg"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    workload = get_workload(name)

    result = run_methodology(
        workload.compile(),
        workload.training_inputs(scale=scale),
        policy=AnnotationPolicy(accuracy_threshold=70.0),
    )
    annotated = result.annotated
    directives = annotated.directives()
    stride_tags = sum(1 for d in directives.values() if d is Directive.STRIDE)
    print(
        f"{name}: {stride_tags} stride-tagged vs "
        f"{len(directives) - stride_tags} last-value-tagged instructions"
    )

    engines = {
        "unified stride x512": PredictionEngine(
            annotated, StridePredictor(512, 2), ProfileClassification(annotated)
        ),
        "hybrid 128s + 384lv": PredictionEngine(
            annotated,
            HybridPredictor(stride_entries=128, last_value_entries=384, ways=2),
            ProfileClassification(annotated),
        ),
        "unified lastval x512": PredictionEngine(
            annotated, LastValuePredictor(512, 2), ProfileClassification(annotated)
        ),
    }
    stats = simulate_prediction_many(
        annotated, workload.test_inputs(scale=scale), engines
    )

    print(f"\n{'organization':22s}{'correct':>10s}{'wrong':>8s}{'accuracy':>10s}"
          f"{'stride fields':>15s}")
    fields = {"unified stride x512": 512, "hybrid 128s + 384lv": 128,
              "unified lastval x512": 0}
    for label, stat in stats.items():
        print(
            f"{label:22s}{stat.taken_correct:10d}{stat.taken_incorrect:8d}"
            f"{stat.taken_accuracy:9.1f}%{fields[label]:15d}"
        )
    print(
        "\nreading: the hybrid keeps (nearly) the unified stride table's"
        "\ncorrect predictions while provisioning a quarter of the stride"
        "\nfields - the directive steers each instruction to the right table."
    )


if __name__ == "__main__":
    main()
