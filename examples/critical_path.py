"""Profile-guided critical-path analysis (the paper's future work).

Section 6 of the paper: "We are examining the effect of the profiling
information on the scheduling of instruction within a basic block and the
analysis of the critical path."

This example runs that study on one workload: it extracts basic blocks,
computes each block's dataflow critical path, and recomputes it with
profile-classified value-predictable producers collapsed — then prints
the blocks that shorten the most, i.e. where a scheduler armed with the
profile gains the most freedom.

Run with: ``python examples/critical_path.py [workload] [threshold]``
"""

import sys

from repro import AnnotationPolicy, collect_profile, merge_profiles
from repro.analysis import (
    analyze_blocks,
    block_statistics,
    format_schedule,
    predictable_addresses,
    schedule_block,
    summarize_paths,
)
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "132.ijpeg"
    threshold = float(sys.argv[2]) if len(sys.argv) > 2 else 70.0
    workload = get_workload(name)
    program = workload.compile()

    count, mean_size, largest = block_statistics(program)
    print(f"{name}: {count} basic blocks, mean size {mean_size:.1f}, "
          f"largest {largest}")

    images = [
        collect_profile(program, inputs)
        for inputs in workload.training_inputs(count=3, scale=0.3)
    ]
    image = merge_profiles(images)
    policy = AnnotationPolicy(accuracy_threshold=threshold)

    paths = analyze_blocks(program, image, policy, min_size=3)
    summary = summarize_paths(paths)
    print(
        f"\nmean critical path over {summary.blocks} blocks: "
        f"{summary.mean_length:.2f} -> {summary.mean_predicted_length:.2f} cycles "
        f"({100 * summary.relative_shortening:.0f}% shorter at th={threshold:g}%)"
    )

    best = sorted(paths, key=lambda path: path.shortening, reverse=True)[:8]
    print("\nblocks that shorten the most:")
    print(f"  {'block':>12s} {'size':>5s} {'plain':>6s} {'with VP':>8s} {'saved':>6s}")
    for path in best:
        label = f"@{path.block.start}-{path.block.end - 1}"
        print(
            f"  {label:>12s} {len(path.block):5d} {path.length:6d} "
            f"{path.predicted_length:8d} {path.shortening:6d}"
        )
    # Show the actual schedules of the best block, before and after.
    winner = best[0]
    predictable = predictable_addresses(program, image, policy)
    print(f"\nASAP schedule of block @{winner.block.start} without prediction:")
    print(format_schedule(program, schedule_block(program, winner.block)))
    print(f"\n... and with profile-predicted producers collapsed:")
    print(
        format_schedule(
            program, schedule_block(program, winner.block, predictable)
        )
    )
    print(
        "\nreading: the saved cycles are dependence edges a compiler could"
        "\nschedule across once the profile marks the producer predictable -"
        "\nexactly the intra-block scheduling opportunity the paper's"
        "\nconclusion points at."
    )


if __name__ == "__main__":
    main()
