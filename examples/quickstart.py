"""Quickstart: the paper's three-phase methodology on a small program.

Runs end to end in a couple of seconds:

1. compile a mini-C program (phase 1),
2. profile it under an emulated stride predictor with training inputs
   (phase 2),
3. re-tag its opcodes with stride/last-value directives (phase 3),
4. evaluate profile-guided vs hardware (saturating-counter)
   classification on an unseen input.

Run with: ``python examples/quickstart.py``
"""

from repro import (
    AnnotationPolicy,
    HardwareScheme,
    ProfileScheme,
    evaluate_scheme,
    run_methodology,
)

# The paper's own motivating example is a vector-sum loop: the index
# arithmetic is perfectly stride-predictable, the loaded data is not.
SOURCE = """
int a[64];
int b[64];
int c[64];

void main() {
    int i;
    int total;
    int n;
    n = in();
    for (i = 0; i < 64; i = i + 1) {
        b[i] = in();
        c[i] = in();
    }
    total = 0;
    while (n > 0) {
        for (i = 0; i < 64; i = i + 1) {
            a[i] = b[i] + c[i];
            total = (total + a[i]) % 100000;
        }
        n = n - 1;
    }
    out(total);
}
"""


def make_inputs(seed: int) -> list:
    values = []
    state = seed
    for _ in range(128):
        state = (state * 1103515245 + 12345) % (1 << 31)
        values.append(state % 1000)
    return [25] + values


def main() -> None:
    train_inputs = [make_inputs(seed) for seed in (1, 2, 3)]
    test_inputs = make_inputs(99)

    result = run_methodology(
        SOURCE, train_inputs, policy=AnnotationPolicy(accuracy_threshold=90.0)
    )
    report = result.report
    print("phase 3 annotation report")
    print(f"  candidate instructions : {report.candidates}")
    print(f"  tagged 'stride'        : {report.stride_tagged}")
    print(f"  tagged 'last-value'    : {report.last_value_tagged}")
    print(f"  left untagged          : {report.candidates - report.tagged}")

    profile_stats = evaluate_scheme(ProfileScheme(result), test_inputs, entries=64)
    hardware_stats = evaluate_scheme(
        HardwareScheme(result.program), test_inputs, entries=64
    )

    print("\nevaluation on an unseen input (64-entry stride table)")
    print(f"  {'':24s}{'profile-guided':>16s}{'saturating ctrs':>16s}")
    print(
        f"  {'correct predictions':24s}{profile_stats.taken_correct:16d}"
        f"{hardware_stats.taken_correct:16d}"
    )
    print(
        f"  {'mispredictions':24s}{profile_stats.taken_incorrect:16d}"
        f"{hardware_stats.taken_incorrect:16d}"
    )
    print(
        f"  {'effective accuracy':24s}{profile_stats.taken_accuracy:15.1f}%"
        f"{hardware_stats.taken_accuracy:15.1f}%"
    )


if __name__ == "__main__":
    main()
