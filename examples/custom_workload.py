"""Bring your own workload: write mini-C, profile it, inspect directives.

Shows the lower-level API surface:

* compile mini-C with :func:`repro.compile_source`,
* collect a profile image and write it to disk in the paper's
  profile-image format,
* annotate and *disassemble* the binary — the ``.s`` / ``.lv`` opcode
  suffixes in the listing are the paper's stride / last-value directives.

Run with: ``python examples/custom_workload.py``
"""

from repro import (
    AnnotationPolicy,
    annotate_program,
    collect_profile,
    compile_source,
    disassemble,
    merge_profiles,
)
from repro.profiling import dumps_profile

# Matrix-vector multiply: row/column index arithmetic strides perfectly;
# the accumulated dot products are data dependent.
SOURCE = """
int matrix[256];     // 16 x 16
int vector[16];
int result[16];

void main() {
    int row;
    int col;
    int acc;
    int n;
    n = 16;
    for (row = 0; row < n; row = row + 1) {
        vector[row] = in();
        for (col = 0; col < n; col = col + 1) {
            matrix[row * n + col] = in();
        }
    }
    for (row = 0; row < n; row = row + 1) {
        acc = 0;
        for (col = 0; col < n; col = col + 1) {
            acc = acc + matrix[row * n + col] * vector[col];
        }
        result[row] = acc;
        out(acc);
    }
}
"""


def make_inputs(seed: int) -> list:
    state = seed
    values = []
    for _ in range(16 + 256):
        state = (state * 48271) % 2147483647
        values.append(state % 50)
    return values


def main() -> None:
    program = compile_source(SOURCE, name="matvec")
    print(f"compiled matvec: {len(program)} instructions")

    images = [
        collect_profile(program, make_inputs(seed), run_label=f"train-{seed}")
        for seed in (11, 22, 33)
    ]
    profile = merge_profiles(images)
    print(f"profiled {len(profile)} candidate instructions over 3 runs")
    print("\nfirst lines of the profile image file:")
    for line in dumps_profile(profile).splitlines()[:8]:
        print(f"  {line}")

    annotated = annotate_program(
        program, profile, AnnotationPolicy(accuracy_threshold=90.0)
    )
    directives = annotated.directives()
    print(f"\n{len(directives)} instructions tagged; excerpt of the listing:")
    listing = disassemble(annotated).splitlines()
    # Show a window around the first tagged instruction.
    tagged_lines = [
        index
        for index, line in enumerate(listing)
        if ".s " in line or ".lv " in line
    ]
    start = max(0, tagged_lines[0] - 2)
    for line in listing[start : start + 14]:
        marker = "  <-- directive" if (".s " in line or ".lv " in line) else ""
        print(f"  {line}{marker}")


if __name__ == "__main__":
    main()
