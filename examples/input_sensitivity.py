"""Does value predictability transfer across inputs? (Section 4 study)

Profiles one workload under its five training inputs, builds the paper's
M(V)max / M(V)average / M(S)average similarity metrics, and prints their
interval histograms — the reproduction of Figures 4.1-4.3 for a single
benchmark, with ASCII bars.

Run with: ``python examples/input_sensitivity.py [workload] [scale]``
"""

import sys

from repro import collect_profile
from repro.profiling import (
    HISTOGRAM_LABELS,
    accuracy_vectors,
    average_distance_metric,
    interval_percentages,
    max_distance_metric,
    stride_efficiency_vectors,
)
from repro.workloads import get_workload


def bar(percent: float, width: int = 40) -> str:
    filled = int(round(percent / 100.0 * width))
    return "#" * filled


def print_histogram(title: str, percentages: list) -> None:
    print(f"\n{title}")
    for label, percent in zip(HISTOGRAM_LABELS, percentages):
        print(f"  {label:>9s} {percent:5.1f}% {bar(percent)}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "134.perl"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    workload = get_workload(name)
    program = workload.compile()

    print(f"profiling {name} under 5 different inputs (scale={scale}) ...")
    images = [
        collect_profile(program, inputs, run_label=f"train-{index}")
        for index, inputs in enumerate(workload.training_inputs(scale=scale))
    ]

    vectors = accuracy_vectors(images)
    print(f"{len(vectors[0])} instructions common to all runs")

    print_histogram(
        "M(V)max  - max pairwise accuracy distance per instruction (fig 4.1)",
        interval_percentages(max_distance_metric(vectors)),
    )
    print_histogram(
        "M(V)avg  - mean pairwise accuracy distance per instruction (fig 4.2)",
        interval_percentages(average_distance_metric(vectors)),
    )
    stride_vectors = stride_efficiency_vectors(images)
    print_histogram(
        "M(S)avg  - mean pairwise stride-efficiency distance (fig 4.3)",
        interval_percentages(average_distance_metric(stride_vectors)),
    )
    print(
        "\nreading: mass in the low intervals means per-instruction value"
        "\npredictability barely moves across inputs - a profile collected on"
        "\ntraining inputs describes unseen inputs too, which is the premise"
        "\nof the whole profile-guided scheme."
    )


if __name__ == "__main__":
    main()
