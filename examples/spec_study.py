"""Full benchmark study on one SPEC95-idiom workload (126.gcc).

Reproduces the paper's Section 5 pipeline on a single benchmark:

* profile five training runs and annotate at several thresholds,
* compare prediction quality under a finite 512-entry 2-way stride table
  (Figures 5.3/5.4 view),
* compare extractable ILP on the abstract machine (Table 5.2 view).

gcc is the interesting case: its ~1600 live candidate instructions
overflow the 512-entry table, so the profile scheme's admission control
pays off directly.

Run with: ``python examples/spec_study.py [workload] [scale]``
"""

import sys

from repro import (
    AnnotationPolicy,
    HardwareClassification,
    HardwareScheme,
    PredictionEngine,
    ProfileClassification,
    ProfileScheme,
    StridePredictor,
    evaluate_scheme,
    run_methodology,
)
from repro.ilp import ilp_increase, measure_ilp_many
from repro.workloads import get_workload

THRESHOLDS = (90.0, 70.0, 50.0)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "126.gcc"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    workload = get_workload(name)
    program = workload.compile()
    test_inputs = workload.test_inputs(scale=scale)
    print(
        f"{name}: {len(program)} instructions, "
        f"{len(program.candidate_addresses)} prediction candidates"
    )

    print("\n-- finite 512-entry 2-way stride table --")
    hardware = evaluate_scheme(HardwareScheme(program), test_inputs)
    print(
        f"  saturating counters : {hardware.taken_correct:7d} correct, "
        f"{hardware.taken_incorrect:6d} wrong"
    )
    results = {}
    for threshold in THRESHOLDS:
        result = run_methodology(
            program,
            workload.training_inputs(scale=scale),
            policy=AnnotationPolicy(accuracy_threshold=threshold),
        )
        results[threshold] = result
        stats = evaluate_scheme(ProfileScheme(result), test_inputs)
        delta_ok = 100.0 * (stats.taken_correct - hardware.taken_correct) / max(
            1, hardware.taken_correct
        )
        delta_bad = 100.0 * (stats.taken_incorrect - hardware.taken_incorrect) / max(
            1, hardware.taken_incorrect
        )
        print(
            f"  profile th={threshold:2.0f}%     : {stats.taken_correct:7d} correct "
            f"({delta_ok:+5.1f}%), {stats.taken_incorrect:6d} wrong ({delta_bad:+5.1f}%)"
        )

    print("\n-- abstract machine ILP (40-entry window, 1-cycle penalty) --")
    engines = {
        "novp": None,
        "sc": PredictionEngine(
            program, StridePredictor(512, 2), HardwareClassification()
        ),
    }
    for threshold in THRESHOLDS:
        annotated = results[threshold].annotated
        engines[f"prof{threshold:g}"] = PredictionEngine(
            annotated, StridePredictor(512, 2), ProfileClassification(annotated)
        )
    ilp = measure_ilp_many(program, test_inputs, engines)
    baseline = ilp["novp"]
    print(f"  no value prediction : ILP = {baseline.ilp:.2f}")
    print(
        f"  VP + sat. counters  : ILP = {ilp['sc'].ilp:.2f} "
        f"({ilp_increase(ilp['sc'], baseline):+.0f}%)"
    )
    for threshold in THRESHOLDS:
        result = ilp[f"prof{threshold:g}"]
        print(
            f"  VP + profile th={threshold:2.0f}% : ILP = {result.ilp:.2f} "
            f"({ilp_increase(result, baseline):+.0f}%)"
        )


if __name__ == "__main__":
    main()
