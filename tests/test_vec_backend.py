"""Property tests for the packed value sidecar and the vectorized backend.

Three layers, matching how a value travels through the analysis stack:

* :class:`~repro.machine.ValueColumn` — packing a produced-value stream
  must round-trip exactly, floats staying floats (``3.0`` never collapses
  into ``3``) and bigints surviving beyond the int64 envelope.
* ``TraceBatch.records()`` — the per-record adapter over packed columns
  must reproduce the value stream the executor produced.
* ``simulate_prediction_many`` — over seeded random programs, the
  vectorized backend and the pure-Python consumers must publish
  identical statistics, table contents and classifier states (the
  in-process mirror of the ``simulate-vec-vs-pure`` oracle pair).

Tests that assert the numpy fold actually *engages* are skip-marked when
numpy is absent; everything else runs on the pure path unchanged.
"""

from __future__ import annotations

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.generator import generate_case
from repro.check.oracle import _check_simulate_vec, _int_only_case
from repro.core.simulate_vec import DISABLE_ENV, numpy_or_none
from repro.machine import ExecutionError, ValueColumn, trace_batches

_has_numpy = numpy_or_none() is not None

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Produced values as the executor hands them over: mostly small ints,
#: with floats and the occasional bigint mixed in.
_VALUES = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.integers(min_value=_INT64_MIN, max_value=_INT64_MAX),
    st.integers(min_value=_INT64_MAX + 1, max_value=1 << 80),
    st.integers(min_value=-(1 << 80), max_value=_INT64_MIN - 1),
    st.floats(allow_nan=False),
    st.just(3.0),  # the canonical int-masquerade float
)


def _same_value(left, right) -> bool:
    """Exact identity: type-aware, NaN-tolerant."""
    if isinstance(left, float) != isinstance(right, float):
        return False
    if isinstance(left, float) and math.isnan(left):
        return isinstance(right, float) and math.isnan(right)
    return left == right


@settings(max_examples=200, deadline=None)
@given(st.lists(_VALUES, max_size=64))
def test_value_column_round_trips(values):
    column = ValueColumn.from_values(values)
    assert len(column) == len(values)
    assert all(
        _same_value(packed, original)
        for packed, original in zip(column.tolist(), values)
    )
    assert all(
        _same_value(column[position], original)
        for position, original in enumerate(values)
    )
    assert all(
        _same_value(packed, original)
        for packed, original in zip(column, values)
    )


@settings(max_examples=200, deadline=None)
@given(st.lists(_VALUES, max_size=64))
def test_value_column_escapes_exactly_the_unpackable(values):
    column = ValueColumn.from_values(values)
    for position, value in enumerate(values):
        packable = (
            isinstance(value, int)
            and not isinstance(value, bool)
            and _INT64_MIN <= value <= _INT64_MAX
        )
        assert (position in column.escapes) == (not packable)
    assert column.is_pure_int == (not column.escapes)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_batch_records_reproduce_produced_values(seed):
    """records() must re-interleave packed values with the None slots."""
    case = generate_case(seed)
    produced = []
    rebuilt = []
    try:
        for batch in trace_batches(
            case.program, case.inputs, max_instructions=5_000
        ):
            flags = batch.value_flags
            produced.extend(batch.values.tolist())
            rebuilt.extend(
                record.value
                for record in batch.records()
                if flags[record.address]
            )
    except ExecutionError:
        pass  # a faulting program still yields its prefix batches first
    assert len(produced) == len(rebuilt)
    assert all(_same_value(a, b) for a, b in zip(produced, rebuilt))


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_vec_matches_pure_on_random_programs(seed):
    """The oracle pair, in-process: generated case + its integer twin."""
    assert _check_simulate_vec(generate_case(seed), 5_000) is None


@pytest.mark.skipif(not _has_numpy, reason="numpy unavailable")
def test_vec_backend_engages_on_integer_programs():
    """The integer twin must run the numpy fold, not just demote."""
    from repro.telemetry import Telemetry, use_registry

    registry = Telemetry()
    with use_registry(registry):
        assert _check_simulate_vec(generate_case(7), 5_000) is None
    counters = registry.snapshot()["counters"]
    assert counters.get("simulate.vec.runs", 0) > 0
    assert counters.get("simulate.vec.candidates", 0) > 0


@pytest.mark.skipif(not _has_numpy, reason="numpy unavailable")
def test_disable_env_forces_pure_path():
    from repro.telemetry import Telemetry, use_registry

    case = _int_only_case(generate_case(11))
    saved = os.environ.get(DISABLE_ENV)
    os.environ[DISABLE_ENV] = "1"
    try:
        registry = Telemetry()
        with use_registry(registry):
            assert _check_simulate_vec(case, 5_000) is None
        counters = registry.snapshot()["counters"]
        assert counters.get("simulate.vec.runs", 0) == 0
    finally:
        if saved is None:
            os.environ.pop(DISABLE_ENV, None)
        else:
            os.environ[DISABLE_ENV] = saved
