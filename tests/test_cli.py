"""Tests for the toolchain CLI (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import main, parse_input_sets, parse_input_stream, parse_inputs_spec

DEMO_SOURCE = """
int t[8];
void main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 8; i = i + 1) {
        t[i] = in() * 2;
        total = total + t[i];
    }
    out(total);
}
"""


@pytest.fixture
def demo(tmp_path):
    source = tmp_path / "demo.mc"
    source.write_text(DEMO_SOURCE, encoding="utf-8")
    return tmp_path, source


class TestParseInputs:
    def test_inline(self):
        assert parse_inputs_spec("1,2,3.5") == [1, 2, 3.5]

    def test_empty(self):
        assert parse_inputs_spec(None) == []
        assert parse_inputs_spec("") == []

    def test_file(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("4 5\n6.5\n", encoding="utf-8")
        assert parse_inputs_spec(f"@{path}") == [4, 5, 6.5]

    def test_stream_concatenates(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("3 4", encoding="utf-8")
        assert parse_input_stream(["1,2", f"@{path}", "5"]) == [1, 2, 3, 4, 5]
        assert parse_input_stream([]) == []

    def test_sets_stay_separate(self):
        assert parse_input_sets(["1,2", "", "3"]) == [[1, 2], [], [3]]


class TestPipeline:
    def test_compile_run(self, demo, capsys):
        directory, source = demo
        assembly = directory / "demo.asm"
        assert main(["compile", str(source), "-o", str(assembly)]) == 0
        assert assembly.exists()
        assert main(["run", str(assembly), "--inputs", "1,2,3,4,5,6,7,8"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == str(2 * sum(range(1, 9)))

    def test_full_three_phases(self, demo, capsys):
        directory, source = demo
        assembly = directory / "demo.asm"
        profile = directory / "demo.profile"
        tagged = directory / "tagged.asm"
        main(["compile", str(source), "-o", str(assembly)])
        assert (
            main(
                [
                    "profile",
                    str(assembly),
                    "--inputs",
                    "1,2,3,4,5,6,7,8",
                    "--inputs",
                    "8,7,6,5,4,3,2,1",
                    "-o",
                    str(profile),
                ]
            )
            == 0
        )
        assert profile.read_text().startswith("# repro-profile-image v1")
        assert (
            main(
                [
                    "annotate",
                    str(assembly),
                    str(profile),
                    "--threshold",
                    "80",
                    "-o",
                    str(tagged),
                ]
            )
            == 0
        )
        text = tagged.read_text()
        assert ".s " in text or ".lv " in text
        # The annotated binary still runs and computes the same function.
        capsys.readouterr()
        main(["run", str(tagged), "--inputs", "1,1,1,1,1,1,1,1"])
        assert capsys.readouterr().out.strip() == "16"

    def test_disasm_roundtrip(self, demo, capsys):
        directory, source = demo
        assembly = directory / "demo.asm"
        main(["compile", str(source), "-o", str(assembly)])
        capsys.readouterr()
        assert main(["disasm", str(assembly)]) == 0
        out = capsys.readouterr().out
        assert ".text" in out and "call main" in out

    def test_profile_to_stdout(self, demo, capsys):
        directory, source = demo
        assembly = directory / "demo.asm"
        main(["compile", str(source), "-o", str(assembly)])
        capsys.readouterr()
        main(["profile", str(assembly), "--inputs", "1,2,3,4,5,6,7,8"])
        assert capsys.readouterr().out.startswith("# repro-profile-image v1")

    def test_no_optimize_flag(self, demo):
        directory, source = demo
        optimized = directory / "o2.asm"
        plain = directory / "o0.asm"
        main(["compile", str(source), "-o", str(optimized)])
        main(["compile", str(source), "--no-optimize", "-o", str(plain)])
        count = lambda path: sum(  # noqa: E731
            1
            for line in path.read_text().splitlines()
            if line.startswith("    ")
        )
        assert count(optimized) <= count(plain)

    def test_report(self, demo, capsys):
        directory, source = demo
        assembly = directory / "demo.asm"
        profile = directory / "demo.profile"
        main(["compile", str(source), "-o", str(assembly)])
        main(
            ["profile", str(assembly), "--inputs", "1,2,3,4,5,6,7,8",
             "-o", str(profile)]
        )
        capsys.readouterr()
        assert main(["report", str(assembly), str(profile), "--top", "3",
                     "--min-attempts", "2"]) == 0
        out = capsys.readouterr().out
        assert "most predictable" in out
        assert "least predictable" in out
        assert "overall accuracy" in out

    def test_trace_and_offline_profile(self, demo, capsys):
        directory, source = demo
        assembly = directory / "demo.asm"
        trace = directory / "demo.trace.gz"
        profile = directory / "offline.profile"
        main(["compile", str(source), "-o", str(assembly)])
        assert main(
            ["trace", str(assembly), "--inputs", "1,2,3,4,5,6,7,8",
             "-o", str(trace)]
        ) == 0
        assert trace.exists()
        assert main(
            ["profile", str(assembly), "--trace", str(trace), "-o", str(profile)]
        ) == 0
        # Offline profile matches a live one on the same input.
        live = directory / "live.profile"
        main(["profile", str(assembly), "--inputs", "1,2,3,4,5,6,7,8",
              "-o", str(live)])
        from repro.profiling import read_profile

        offline_image = read_profile(profile)
        live_image = read_profile(live)
        assert {
            a: (p.attempts, p.correct)
            for a, p in offline_image.instructions.items()
        } == {
            a: (p.attempts, p.correct)
            for a, p in live_image.instructions.items()
        }
