"""Tests for trace persistence and replay (the trace/analyze split)."""

from __future__ import annotations

import pytest

from repro.machine import (
    TraceFormatError,
    read_trace,
    save_trace,
    trace_program,
)
from repro.profiling import collect_profile
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    workload = get_workload("129.compress")
    program = workload.compile()
    inputs = workload.input_set(0, scale=0.03)
    path = tmp_path_factory.mktemp("traces") / "run.trace"
    count = save_trace(program, path, inputs=inputs)
    return workload, program, inputs, path, count


class TestRoundTrip:
    def test_record_count_matches_live_run(self, traced):
        _workload, program, inputs, path, count = traced
        live = sum(1 for _ in trace_program(program, inputs))
        assert count == live
        replayed = sum(1 for _ in read_trace(path))
        assert replayed == live

    def test_records_identical_to_live(self, traced):
        _workload, program, inputs, path, _count = traced
        for live, stored in zip(trace_program(program, inputs), read_trace(path)):
            assert live.address == stored.address
            assert live.value == stored.value
            assert live.phase == stored.phase
            assert live.mem_address == stored.mem_address

    def test_float_values_replay_exactly(self, tmp_path):
        workload = get_workload("107.mgrid")
        program = workload.compile()
        inputs = workload.input_set(0, scale=0.03)
        path = tmp_path / "fp.trace"
        save_trace(program, path, inputs=inputs)
        live_values = [r.value for r in trace_program(program, inputs)]
        stored_values = [r.value for r in read_trace(path)]
        assert live_values == stored_values

    def test_gzip_variant(self, tmp_path):
        workload = get_workload("129.compress")
        program = workload.compile()
        inputs = workload.input_set(1, scale=0.03)
        plain = tmp_path / "t.trace"
        packed = tmp_path / "t.trace.gz"
        save_trace(program, plain, inputs=inputs)
        save_trace(program, packed, inputs=inputs)
        assert packed.stat().st_size < plain.stat().st_size
        assert sum(1 for _ in read_trace(packed)) == sum(
            1 for _ in read_trace(plain)
        )


class TestOfflineProfiling:
    def test_profile_from_trace_matches_live_profile(self, traced):
        _workload, program, inputs, path, _count = traced
        live = collect_profile(program, inputs)
        offline = collect_profile(program, records=read_trace(path))
        assert set(live.instructions) == set(offline.instructions)
        for address, profile in live.instructions.items():
            other = offline.instructions[address]
            assert (profile.attempts, profile.correct) == (
                other.attempts, other.correct,
            )


class TestFormatErrors:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("nope\n", encoding="utf-8")
        with pytest.raises(TraceFormatError):
            list(read_trace(path))

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\n1 2\n", encoding="utf-8")
        with pytest.raises(TraceFormatError):
            list(read_trace(path))

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nx 1 0 -\n", encoding="utf-8")
        with pytest.raises(TraceFormatError):
            list(read_trace(path))
