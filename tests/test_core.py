"""Unit tests for classification schemes and the simulation driver."""

from __future__ import annotations

import pytest

from repro.annotate import AnnotationPolicy
from repro.core import (
    AlwaysClassification,
    EvaluationScheme,
    HardwareClassification,
    HardwareScheme,
    PredictionEngine,
    ProbeScheme,
    ProfileClassification,
    ProfileScheme,
    evaluate_scheme,
    run_methodology,
    simulate_prediction,
    simulate_prediction_many,
)
from repro.isa import Directive, assemble
from repro.predictors import LastValuePredictor, StridePredictor

STRIDE_LOOP = """
.text
    li r1, 0
    li r2, 60
loop:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, loop
    halt
"""

MINIC_MIX = """
int table[32];

int hash(int x) { return (x * 37 + 11) % 97; }

void main() {
    int i;
    int noise;
    noise = 0;
    for (i = 0; i < 40; i = i + 1) {
        table[i % 32] = hash(i * i + noise);
        noise = (noise * 5 + table[i % 32]) % 1000;
        out(noise);
    }
}
"""


class TestSchemes:
    def test_always_scheme(self):
        scheme = AlwaysClassification()
        assert scheme.may_allocate(0) and scheme.should_take(0)

    def test_hardware_scheme_learns(self):
        scheme = HardwareClassification()
        assert scheme.may_allocate(5)
        assert not scheme.should_take(5)       # warm-up
        scheme.record(5, True)
        assert scheme.should_take(5)
        scheme.record(5, False)
        scheme.record(5, False)
        assert not scheme.should_take(5)

    def test_profile_scheme_is_static(self):
        scheme = ProfileClassification.from_directives({3: Directive.STRIDE})
        assert scheme.may_allocate(3) and scheme.should_take(3)
        assert not scheme.may_allocate(4) and not scheme.should_take(4)
        scheme.record(4, True)                  # learning is a no-op
        assert not scheme.should_take(4)
        assert scheme.directive_of(3) is Directive.STRIDE
        assert scheme.tagged_count == 1

    def test_probe_forces_allocation(self):
        inner = ProfileClassification.from_directives({})
        probe = ProbeScheme(inner)
        assert probe.may_allocate(9)
        assert not probe.should_take(9)


class TestSimulateDriver:
    def test_counts_are_consistent(self):
        program = assemble(STRIDE_LOOP)
        stats = simulate_prediction(program)
        assert stats.attempts <= stats.executions
        assert stats.would_correct <= stats.attempts
        assert stats.taken <= stats.attempts
        assert stats.taken_correct <= stats.would_correct
        assert stats.taken_incorrect <= stats.would_incorrect
        assert stats.avoided == stats.attempts - stats.taken

    def test_always_scheme_takes_everything(self):
        program = assemble(STRIDE_LOOP)
        stats = simulate_prediction(program, scheme=AlwaysClassification())
        assert stats.taken == stats.attempts
        assert stats.taken_correct == stats.would_correct

    def test_stride_loop_mostly_correct(self):
        program = assemble(STRIDE_LOOP)
        stats = simulate_prediction(program)
        assert stats.would_correct / stats.attempts > 0.9

    def test_per_address_totals_match_aggregate(self):
        program = assemble(STRIDE_LOOP)
        stats = simulate_prediction(program)
        assert sum(s.executions for s in stats.per_address.values()) == stats.executions
        assert sum(s.attempts for s in stats.per_address.values()) == stats.attempts
        assert sum(s.would_correct for s in stats.per_address.values()) == stats.would_correct

    def test_classification_accuracy_bounds(self):
        program = assemble(STRIDE_LOOP)
        stats = simulate_prediction(
            program, scheme=ProbeScheme(HardwareClassification())
        )
        assert 0.0 <= stats.misprediction_classification_accuracy <= 100.0
        assert 0.0 <= stats.correct_classification_accuracy <= 100.0

    def test_multi_engine_matches_single(self):
        from repro.lang import compile_source

        program = compile_source(MINIC_MIX)
        single = simulate_prediction(
            program, predictor=StridePredictor(64, 2), scheme=HardwareClassification()
        )
        many = simulate_prediction_many(
            program,
            (),
            {
                "a": PredictionEngine(
                    program, StridePredictor(64, 2), HardwareClassification()
                ),
                "b": PredictionEngine(
                    program, LastValuePredictor(64, 2), AlwaysClassification()
                ),
            },
        )
        assert many["a"].taken_correct == single.taken_correct
        assert many["a"].attempts == single.attempts

    def test_empty_engines_rejected(self):
        program = assemble(STRIDE_LOOP)
        with pytest.raises(ValueError):
            simulate_prediction_many(program, (), {})


class TestPipeline:
    def test_run_methodology_from_source(self):
        result = run_methodology(
            MINIC_MIX, train_inputs=[[], []], policy=AnnotationPolicy(80.0)
        )
        assert len(result.training_images) == 2
        assert result.report.candidates > 0
        assert len(result.annotated) == len(result.program)

    def test_requires_training_inputs(self):
        with pytest.raises(ValueError):
            run_methodology(MINIC_MIX, train_inputs=[])

    def test_evaluate_both_schemes(self):
        result = run_methodology(MINIC_MIX, train_inputs=[[]])
        profile_stats = evaluate_scheme(ProfileScheme(result), [], entries=64)
        hardware_stats = evaluate_scheme(HardwareScheme(result.program), [], entries=64)
        # The profile scheme never takes an untagged instruction's
        # prediction, so every taken prediction maps to a directive.
        tagged = set(result.annotated.directives())
        for address, per_address in profile_stats.per_address.items():
            if per_address.taken:
                assert address in tagged
        assert hardware_stats.executions == profile_stats.executions

    def test_profile_scheme_allocations_only_tagged(self):
        result = run_methodology(MINIC_MIX, train_inputs=[[]])
        stats = evaluate_scheme(ProfileScheme(result), [], entries=64)
        tagged = set(result.annotated.directives())
        for address, per_address in stats.per_address.items():
            if per_address.allocations:
                assert address in tagged

    def test_schemes_satisfy_protocol(self):
        result = run_methodology(MINIC_MIX, train_inputs=[[]])
        assert isinstance(ProfileScheme(result), EvaluationScheme)
        assert isinstance(HardwareScheme(result.program), EvaluationScheme)

    def test_custom_scheme_via_protocol(self):
        """Any program+classification pair plugs into evaluate_scheme."""

        class AlwaysScheme:
            def __init__(self, program):
                self.program = program

            def classification(self):
                return AlwaysClassification()

        program = assemble(STRIDE_LOOP)
        stats = evaluate_scheme(AlwaysScheme(program), [], entries=64)
        assert stats.attempts > 0

    def test_per_scheme_aliases_removed(self):
        """The pre-1.1 per-scheme wrappers are gone from the facade."""
        import repro
        import repro.core

        for module in (repro, repro.core):
            for name in ("evaluate_profile", "evaluate_hardware"):
                assert not any(
                    attr.startswith(name) for attr in dir(module)
                ), f"{module.__name__} still exports a {name}* alias"


class TestHybridEngineIntegration:
    def test_engine_routes_hybrid_by_directive(self):
        from repro.isa import Directive, assemble
        from repro.predictors import HybridPredictor

        # One stride-patterned instruction, one constant repeater.
        program = assemble(
            """
.text
    li r1, 0
    li r2, 40
loop:
    addi r1, r1, 1
    li r3, 7
    slt r4, r1, r2
    bnez r4, loop
    halt
"""
        )
        addi_address, li7_address = 2, 3
        annotated = program.with_directives(
            {addi_address: Directive.STRIDE, li7_address: Directive.LAST_VALUE}
        )
        engine = PredictionEngine(
            annotated,
            predictor=HybridPredictor(),
            scheme=ProfileClassification(annotated),
        )
        stats = simulate_prediction_many(annotated, (), {"hybrid": engine})["hybrid"]
        # Both instructions get predicted via their own tables.
        assert addi_address in dict(engine.predictor.stride.table)
        assert li7_address in dict(engine.predictor.last_value.table)
        assert stats.taken_correct > 0

    def test_untagged_instruction_never_in_hybrid_tables(self):
        from repro.isa import assemble
        from repro.predictors import HybridPredictor

        program = assemble(".text\n li r1, 5\n li r1, 5\n halt\n")
        engine = PredictionEngine(
            program,
            predictor=HybridPredictor(),
            scheme=ProfileClassification(program),  # no directives at all
        )
        simulate_prediction_many(program, (), {"h": engine})
        assert len(engine.predictor.stride.table) == 0
        assert len(engine.predictor.last_value.table) == 0
