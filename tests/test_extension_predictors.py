"""Unit + property tests for the extension predictors (two-delta, FCM)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import (
    FcmPredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
)


class TestTwoDeltaStride:
    def test_learns_stride_after_two_equal_deltas(self):
        predictor = TwoDeltaStridePredictor()
        predictor.access(0, 10)      # allocate
        predictor.access(0, 20)      # delta 10 (candidate)
        predictor.access(0, 30)      # delta 10 again -> committed
        result = predictor.access(0, 40)
        assert result.correct and result.nonzero_stride

    def test_single_noise_value_does_not_destroy_stride(self):
        predictor = TwoDeltaStridePredictor()
        plain = StridePredictor()
        sequence = [0, 10, 20, 30, 40, 999, 1009, 1019, 2000, 2010, 2020]
        two_delta_correct = 0
        plain_correct = 0
        for value in sequence:
            if predictor.access(0, value).correct:
                two_delta_correct += 1
            if plain.access(0, value).correct:
                plain_correct += 1
        # At each jump both schemes miss the jump itself, but plain stride
        # then *also* mispredicts the next value (it learned the jump as
        # the new stride) while two-delta keeps the committed stride 10
        # and recovers immediately.
        assert two_delta_correct > plain_correct

    def test_constant_sequence(self):
        predictor = TwoDeltaStridePredictor()
        for value in (7, 7, 7, 7):
            result = predictor.access(0, value)
        assert result.correct and not result.nonzero_stride

    def test_allocate_false(self):
        predictor = TwoDeltaStridePredictor()
        result = predictor.access(0, 5, allocate=False)
        assert not result.hit and not result.allocated

    def test_lookup_prediction_formula(self):
        predictor = TwoDeltaStridePredictor()
        for value in (0, 5, 10):
            predictor.access(0, value)
        entry = predictor.table.peek(0)
        assert predictor.lookup_prediction(0) == (
            entry.last_value + entry.committed_stride
        )


class TestFcm:
    def test_periodic_pattern_learned(self):
        predictor = FcmPredictor(order=2)
        pattern = [1, 5, 9] * 12
        correct = sum(1 for v in pattern if predictor.access(0, v).correct)
        # One warm-up period plus one pass to populate each context.
        assert correct >= len(pattern) - 8

    def test_higher_order_distinguishes_contexts(self):
        # Sequence where order-1 contexts are ambiguous (after a 1 comes
        # either 2 or 3 depending on what preceded) but order-2 resolves.
        sequence = [0, 1, 2, 7, 1, 3] * 12
        order1 = FcmPredictor(order=1)
        order2 = FcmPredictor(order=2)
        correct1 = sum(1 for v in sequence if order1.access(0, v).correct)
        correct2 = sum(1 for v in sequence if order2.access(0, v).correct)
        assert correct2 > correct1

    def test_arithmetic_stride_defeats_fcm(self):
        # Ever-growing values never repeat a context: FCM cannot predict.
        predictor = FcmPredictor(order=2)
        correct = sum(
            1 for value in range(0, 300, 3) if predictor.access(0, value).correct
        )
        assert correct == 0

    def test_order_validation(self):
        with pytest.raises(ValueError):
            FcmPredictor(order=0)

    def test_eviction_clears_second_level(self):
        predictor = FcmPredictor(entries=2, ways=2, order=1)
        for value in (1, 2, 1, 2):
            predictor.access(0, value)
        assert predictor._values
        # Force eviction of address 0 by filling its set.
        predictor.access(2, 5)
        predictor.access(4, 6)
        assert all(key[0] != 0 for key in predictor._values)

    def test_clear(self):
        predictor = FcmPredictor(order=1)
        predictor.access(0, 1)
        predictor.access(0, 2)
        predictor.clear()
        assert predictor.lookup_prediction(0) is None
        assert not predictor._values


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=-500, max_value=500),
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=4, max_value=25),
)
def test_two_delta_perfect_on_arithmetic_after_warmup(start, stride, length):
    predictor = TwoDeltaStridePredictor()
    for index in range(length):
        result = predictor.access(0, start + index * stride)
        if index >= 3:
            assert result.correct


class _ScanEvictFcm(FcmPredictor):
    """Reference twin: eviction by full scan of the second-level table.

    The production predictor keeps a per-address index of live context
    keys; this twin re-derives the same removal set the expensive way,
    so the property below pins the index to the scan byte for byte.
    """

    def _wrap_evict(self, on_evict):
        def _evict(address: int) -> None:
            for key in [key for key in self._values if key[0] == address]:
                del self._values[key]
            self._contexts.pop(address, None)
            if on_evict is not None:
                on_evict(address)

        return _evict


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # address
            st.integers(min_value=0, max_value=3),   # value
            st.booleans(),                           # allocate
        ),
        min_size=1,
        max_size=80,
    )
)
def test_fcm_eviction_index_matches_full_scan(ops):
    """A tiny direct-mapped table makes eviction constant; the indexed
    eviction path must stay observably identical to the full scan —
    results, predictions, second-level contents and eviction callbacks."""
    fast = FcmPredictor(entries=2, ways=1, order=1)
    reference = _ScanEvictFcm(entries=2, ways=1, order=1)
    fast_evicted, reference_evicted = [], []
    for address, value, allocate in ops:
        result = fast.access(
            address, value, allocate=allocate, on_evict=fast_evicted.append
        )
        expected = reference.access(
            address, value, allocate=allocate, on_evict=reference_evicted.append
        )
        assert result == expected
        assert fast.lookup_prediction(address) == reference.lookup_prediction(address)
        # The per-address index is exactly the live second-level key set.
        live = {}
        for entry_address, context in fast._values:
            live.setdefault(entry_address, set()).add(context)
        assert fast._contexts == live
    assert fast._values == reference._values
    assert fast_evicted == reference_evicted


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=4),
    st.integers(min_value=3, max_value=10),
)
def test_fcm_eventually_perfect_on_any_periodic_pattern(pattern, repeats):
    """Once every context has been seen, a periodic stream predicts 100%."""
    predictor = FcmPredictor(order=len(pattern))
    stream = pattern * repeats
    results = [predictor.access(0, value).correct for value in stream]
    # The final period must be entirely correct.
    final_period = results[-len(pattern):]
    assert all(final_period)
