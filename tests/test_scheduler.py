"""Tests for the value-prediction-aware basic-block list scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BasicBlock,
    analyze_blocks,
    basic_blocks,
    block_critical_path,
    format_schedule,
    predictable_addresses,
    schedule_block,
)
from repro.annotate import AnnotationPolicy
from repro.isa import assemble
from repro.profiling import collect_profile
from repro.workloads import get_workload


def block_program(body: str):
    program = assemble(f".text\n{body}\n halt\n")
    return program, BasicBlock(0, len(program) - 1)


class TestAsapSchedule:
    def test_independent_instructions_share_cycle_zero(self):
        program, block = block_program(" li r1, 1\n li r2, 2\n li r3, 3")
        schedule = schedule_block(program, block)
        assert schedule.makespan == 1
        assert schedule.cycles[0] == [0, 1, 2]

    def test_chain_is_sequential(self):
        program, block = block_program(
            " li r1, 1\n addi r2, r1, 1\n addi r3, r2, 1"
        )
        schedule = schedule_block(program, block)
        assert schedule.makespan == 3
        assert [schedule.cycle_of[a] for a in range(3)] == [0, 1, 2]

    def test_makespan_equals_critical_path(self):
        program, block = block_program(
            " li r1, 1\n li r2, 2\n add r3, r1, r2\n mul r4, r3, r3\n st r4, gp, 0\n ld r5, gp, 0"
        )
        schedule = schedule_block(program, block)
        assert schedule.makespan == block_critical_path(program, block)

    def test_predictable_producer_releases_consumer(self):
        program, block = block_program(
            " li r1, 1\n addi r2, r1, 1\n addi r3, r2, 1"
        )
        schedule = schedule_block(program, block, predictable={0, 1})
        assert schedule.makespan == 1

    def test_memory_serialization(self):
        program, block = block_program(
            " li r1, 7\n st r1, gp, 0\n ld r2, gp, 0"
        )
        schedule = schedule_block(program, block)
        assert schedule.cycle_of[2] > schedule.cycle_of[1]

    def test_verify_accepts_own_schedule(self):
        program, block = block_program(
            " li r1, 1\n addi r2, r1, 1\n li r3, 9\n mul r4, r2, r3"
        )
        schedule = schedule_block(program, block)
        schedule.verify(program)  # must not raise

    def test_verify_rejects_broken_schedule(self):
        program, block = block_program(" li r1, 1\n addi r2, r1, 1")
        schedule = schedule_block(program, block)
        broken = type(schedule)(
            block=block,
            cycle_of={0: 0, 1: 0},   # consumer in the producer's cycle
            cycles=[[0, 1]],
        )
        with pytest.raises(AssertionError):
            broken.verify(program)

    def test_format_schedule(self):
        program, block = block_program(" li r1, 1\n addi r2, r1, 1")
        text = format_schedule(program, schedule_block(program, block))
        assert "cycle   0" in text and "cycle   1" in text


class TestWorkloadSchedules:
    def test_every_block_schedule_is_valid_and_optimal(self):
        workload = get_workload("129.compress")
        program = workload.compile()
        image = collect_profile(program, workload.input_set(0, scale=0.03))
        predictable = predictable_addresses(
            program, image, AnnotationPolicy(70.0)
        )
        for block in basic_blocks(program):
            plain = schedule_block(program, block)
            plain.verify(program)
            assert plain.makespan == block_critical_path(program, block)
            speculative = schedule_block(program, block, predictable)
            speculative.verify(program, predictable)
            assert speculative.makespan == block_critical_path(
                program, block, predictable
            )
            assert speculative.makespan <= plain.makespan

    def test_schedule_matches_analyze_blocks(self):
        workload = get_workload("124.m88ksim")
        program = workload.compile()
        for path in analyze_blocks(program, min_size=2):
            schedule = schedule_block(program, path.block)
            assert schedule.makespan == path.length


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=10))
def test_schedule_every_instruction_exactly_once(shape):
    # Build a block of alternating independent/dependent instructions.
    lines = [" li r1, 1"]
    for index, kind in enumerate(shape):
        register = 2 + (index % 20)
        if kind == 0:
            lines.append(f" li r{register}, {index}")
        elif kind == 1:
            lines.append(f" addi r{register}, r1, {index}")
        else:
            lines.append(" addi r1, r1, 1")
    program = assemble(".text\n" + "\n".join(lines) + "\n halt\n")
    block = BasicBlock(0, len(program) - 1)
    schedule = schedule_block(program, block)
    scheduled = [address for cycle in schedule.cycles for address in cycle]
    assert sorted(scheduled) == list(block.addresses)
    schedule.verify(program)
