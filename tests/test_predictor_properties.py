"""Property-based tests for predictor and table invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors import (
    LastValuePredictor,
    PredictionTable,
    StridePredictor,
)

_ADDRESSES = st.integers(min_value=0, max_value=200)
_VALUES = st.integers(min_value=-(10**6), max_value=10**6)
_ACCESSES = st.lists(st.tuples(_ADDRESSES, _VALUES), max_size=300)


@settings(max_examples=100, deadline=None)
@given(_ACCESSES)
def test_table_capacity_never_exceeded(accesses):
    table = PredictionTable(entries=16, ways=4)
    for address, value in accesses:
        if table.lookup(address) is None:
            table.insert(address, value)
    assert len(table) <= 16


@settings(max_examples=100, deadline=None)
@given(_ACCESSES)
def test_eviction_callback_fires_for_every_eviction(accesses):
    table = PredictionTable(entries=8, ways=2)
    victims = []
    for address, value in accesses:
        table.insert(address, value, on_evict=victims.append)
    assert len(victims) == table.evictions
    # A victim is never still resident immediately after its eviction; in
    # aggregate, the final contents plus all victims cover every insert.
    inserted = {address for address, _ in accesses}
    resident = {address for address, _ in table}
    assert resident | set(victims) >= inserted


@settings(max_examples=100, deadline=None)
@given(_ACCESSES)
def test_last_value_predictor_learns_immediately(accesses):
    """After access(a, v), the next prediction for ``a`` is exactly ``v``."""
    predictor = LastValuePredictor()
    for address, value in accesses:
        predictor.access(address, value)
        assert predictor.lookup_prediction(address) == value


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=3, max_value=30),
)
def test_stride_predictor_perfect_on_arithmetic_sequences(start, stride, length):
    """From the third element on, an arithmetic sequence is always correct."""
    predictor = StridePredictor()
    correct = 0
    for index in range(length):
        result = predictor.access(0, start + index * stride)
        if index >= 2:
            assert result.correct
            correct += 1
        if index >= 2 and stride != 0:
            assert result.nonzero_stride
    assert correct == length - 2


@settings(max_examples=100, deadline=None)
@given(_ACCESSES)
def test_stride_predictor_invariant_prediction_formula(accesses):
    """The exposed prediction always equals last_value + stride."""
    predictor = StridePredictor()
    for address, value in accesses:
        predictor.access(address, value)
        entry = predictor.table.peek(address)
        assert predictor.lookup_prediction(address) == (
            entry.last_value + entry.stride
        )


@settings(max_examples=50, deadline=None)
@given(_ACCESSES)
def test_infinite_and_huge_tables_agree(accesses):
    """A table far larger than the address space behaves like infinite."""
    unbounded = StridePredictor(entries=None)
    huge = StridePredictor(entries=1024, ways=2)
    for address, value in accesses:
        a = unbounded.access(address, value)
        b = huge.access(address, value)
        assert (a.hit, a.predicted_value, a.correct) == (
            b.hit, b.predicted_value, b.correct,
        )
