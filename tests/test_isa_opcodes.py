"""Unit tests for opcode metadata."""

from __future__ import annotations

import pytest

from repro.isa import Category, Opcode, opcode_from_mnemonic
from repro.isa.formats import FORMATS


class TestCategories:
    def test_every_opcode_has_a_category(self):
        for opcode in Opcode:
            assert isinstance(opcode.category, Category)

    def test_integer_alu_examples(self):
        for opcode in (Opcode.ADD, Opcode.ADDI, Opcode.SLT, Opcode.LI,
                       Opcode.MOV, Opcode.CVTFI):
            assert opcode.category is Category.INT_ALU

    def test_fp_alu_examples(self):
        for opcode in (Opcode.FADD, Opcode.FLI, Opcode.FSLT, Opcode.CVTIF):
            assert opcode.category is Category.FP_ALU

    def test_loads_split_by_type(self):
        assert Opcode.LD.category is Category.INT_LOAD
        assert Opcode.FLD.category is Category.FP_LOAD

    def test_stores_are_one_category(self):
        assert Opcode.ST.category is Category.STORE
        assert Opcode.FST.category is Category.STORE

    def test_control_flow_flags(self):
        assert Opcode.BEQZ.is_control
        assert Opcode.JMP.is_control
        assert Opcode.CALL.is_control
        assert Opcode.JR.is_control
        assert not Opcode.ADD.is_control


class TestPredictionCandidates:
    def test_alu_and_loads_are_candidates(self):
        for opcode in (Opcode.ADD, Opcode.FADD, Opcode.LD, Opcode.FLD,
                       Opcode.LI, Opcode.MOV):
            assert opcode.is_prediction_candidate

    def test_non_writers_are_not_candidates(self):
        for opcode in (Opcode.ST, Opcode.BEQZ, Opcode.JMP, Opcode.OUT,
                       Opcode.HALT, Opcode.NOP, Opcode.PHASE):
            assert not opcode.is_prediction_candidate

    def test_call_and_input_write_but_are_not_candidates(self):
        # They write a register but compute nothing predictable the paper
        # would target.
        assert Opcode.CALL.writes_register
        assert not Opcode.CALL.is_prediction_candidate
        assert Opcode.IN.writes_register
        assert not Opcode.IN.is_prediction_candidate

    def test_candidates_all_write_registers(self):
        for opcode in Opcode:
            if opcode.is_prediction_candidate:
                assert opcode.writes_register


class TestMemoryFlags:
    def test_reads_memory(self):
        assert Opcode.LD.reads_memory
        assert Opcode.FLD.reads_memory
        assert not Opcode.ST.reads_memory

    def test_writes_memory(self):
        assert Opcode.ST.writes_memory
        assert Opcode.FST.writes_memory
        assert not Opcode.LD.writes_memory


class TestMnemonics:
    def test_roundtrip_all(self):
        for opcode in Opcode:
            assert opcode_from_mnemonic(opcode.value) is opcode

    def test_case_insensitive(self):
        assert opcode_from_mnemonic("ADD") is Opcode.ADD
        assert opcode_from_mnemonic("Beqz") is Opcode.BEQZ

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            opcode_from_mnemonic("frobnicate")

    def test_formats_cover_every_opcode(self):
        assert set(FORMATS) == set(Opcode)
