"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext
from repro.isa import assemble
from repro.lang import compile_source

#: A small assembly program: counts 0..9 into memory, outputs the last value.
COUNT_ASM = """
.name count
.data
counter: 0
.text
    li r1, 0
    li r2, 10
loop:
    addi r1, r1, 1
    st r1, gp, 0
    slt r3, r1, r2
    bnez r3, loop
    ld r4, gp, 0
    out r4
    halt
"""

#: A small mini-C program exercising most language features.
SUM_MINIC = """
int table[16];

int accumulate(int limit) {
    int i;
    int total;
    total = 0;
    for (i = 0; i < limit; i = i + 1) {
        table[i] = i * 2;
        total = total + table[i];
    }
    return total;
}

void main() {
    out(accumulate(in()));
}
"""


@pytest.fixture
def count_program():
    return assemble(COUNT_ASM)


@pytest.fixture
def sum_program():
    return compile_source(SUM_MINIC, name="sum")


@pytest.fixture(scope="session")
def tiny_context():
    """A tiny-scale experiment context shared across experiment tests.

    scale=0.05 keeps every workload run in the tens of thousands of
    dynamic instructions; artifacts are memoized for the whole session.
    """
    return ExperimentContext(scale=0.05, training_runs=3)
