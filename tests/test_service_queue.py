"""Tests for the daemon's priority queue and admission control."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import api
from repro.service.queue import JobQueue


def run(coroutine):
    return asyncio.run(coroutine)


async def drain(queue: JobQueue) -> list:
    """Pop everything currently dispatchable (queue must be closed)."""
    items = []
    while True:
        payload = await queue.get()
        if payload is None:
            return items
        items.append(payload)


class TestDispatchOrder:
    def test_priority_then_fifo(self):
        async def scenario():
            queue = JobQueue()
            queue.submit("t", 0, "low-a")
            queue.submit("t", 5, "high-a")
            queue.submit("t", 0, "low-b")
            queue.submit("t", 5, "high-b")
            queue.close()
            return await drain(queue)

        assert run(scenario()) == ["high-a", "high-b", "low-a", "low-b"]

    def test_position_reflects_depth(self):
        async def scenario():
            queue = JobQueue()
            assert queue.submit("t", 0, "a") == 0
            assert queue.submit("t", 0, "b") == 1
            assert queue.depth == 2

        run(scenario())

    def test_get_blocks_until_submit(self):
        async def scenario():
            queue = JobQueue()
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)
            assert not getter.done()
            queue.submit("t", 0, "late")
            return await asyncio.wait_for(getter, timeout=5)

        assert run(scenario()) == "late"


class TestAdmissionControl:
    def test_tenant_quota(self):
        async def scenario():
            queue = JobQueue(tenant_quota=2)
            queue.submit("alice", 0, "a1")
            queue.submit("alice", 0, "a2")
            with pytest.raises(api.ApiError) as info:
                queue.submit("alice", 0, "a3")
            assert info.value.code == api.QUOTA_EXCEEDED
            assert info.value.http_status == 429
            # Another tenant is unaffected.
            queue.submit("bob", 0, "b1")
            # Quota bounds in-flight work: popping does NOT free the slot...
            assert await queue.get() is not None
            with pytest.raises(api.ApiError):
                queue.submit("alice", 0, "a3")
            # ...release at the terminal state does.
            queue.release("alice")
            queue.submit("alice", 0, "a3")

        run(scenario())

    def test_queue_full(self):
        async def scenario():
            queue = JobQueue(max_depth=2, tenant_quota=100)
            queue.submit("t", 0, "a")
            queue.submit("t", 0, "b")
            with pytest.raises(api.ApiError) as info:
                queue.submit("t", 0, "c")
            assert info.value.code == api.QUEUE_FULL

        run(scenario())

    def test_rejected_submit_takes_no_slot(self):
        async def scenario():
            queue = JobQueue(tenant_quota=1)
            queue.submit("t", 0, "a")
            for _ in range(3):
                with pytest.raises(api.ApiError):
                    queue.submit("t", 0, "again")
            assert queue.in_flight() == {"t": 1}

        run(scenario())

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)
        with pytest.raises(ValueError):
            JobQueue(tenant_quota=0)


class TestShutdown:
    def test_close_rejects_new_but_drains_queued(self):
        async def scenario():
            queue = JobQueue()
            queue.submit("t", 0, "queued-before-close")
            queue.close()
            with pytest.raises(api.ApiError) as info:
                queue.submit("t", 0, "late")
            assert info.value.code == api.SHUTTING_DOWN
            assert info.value.http_status == 503
            return await drain(queue)

        assert run(scenario()) == ["queued-before-close"]

    def test_close_wakes_blocked_getter(self):
        async def scenario():
            queue = JobQueue()
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)
            queue.close()
            return await asyncio.wait_for(getter, timeout=5)

        assert run(scenario()) is None
