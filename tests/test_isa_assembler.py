"""Unit tests for the assembler, disassembler and Program container."""

from __future__ import annotations

import pytest

from repro.isa import (
    AssemblerError,
    Directive,
    Instruction,
    Opcode,
    Program,
    ProgramError,
    assemble,
    build_program,
    disassemble,
    parse_register,
    register_name,
)


class TestRegisters:
    def test_alias_roundtrip(self):
        for name in ("zero", "gp", "sp", "fp", "ra"):
            assert register_name(parse_register(name)) == name

    def test_numeric_names(self):
        assert parse_register("r7") == 7
        assert register_name(7) == "r7"

    def test_bad_names(self):
        for bad in ("r32", "r-1", "x3", "", "rr"):
            with pytest.raises(ValueError):
                parse_register(bad)


class TestAssembler:
    def test_simple_program(self):
        program = assemble(".text\n li r1, 5\n halt\n")
        assert program[0] == Instruction(Opcode.LI, dest=1, imm=5)
        assert program[1].opcode is Opcode.HALT

    def test_labels_resolve(self):
        program = assemble(".text\nstart:\n jmp start\n halt\n")
        assert program[0].target == 0
        assert program.labels["start"] == 0

    def test_forward_reference(self):
        program = assemble(".text\n jmp end\n nop\nend:\n halt\n")
        assert program[0].target == 2

    def test_absolute_target(self):
        program = assemble(".text\n jmp @1\n halt\n")
        assert program[0].target == 1

    def test_data_section(self):
        program = assemble(".data\nvalue: 42\nother: 7 8\n.text\n halt\n")
        assert program.data == {0: 42, 1: 7, 2: 8}
        assert program.symbols == {"value": 0, "other": 1}

    def test_org_directive(self):
        program = assemble(".data\n.org 5\nx: 1\n.text\n halt\n")
        assert program.data == {5: 1}
        assert program.symbols == {"x": 5}

    def test_float_data(self):
        program = assemble(".data\npi: 3.25\n.text\n halt\n")
        assert program.data[0] == 3.25

    def test_directive_suffixes(self):
        program = assemble(".text\n add.s r1, r2, r3\n ld.lv r4, gp, 0\n halt\n")
        assert program[0].directive is Directive.STRIDE
        assert program[1].directive is Directive.LAST_VALUE

    def test_comments_ignored(self):
        program = assemble(".text\n li r1, 1 ; comment\n; whole line\n halt\n")
        assert len(program) == 2

    def test_name_directive(self):
        program = assemble(".name myprog\n.text\n halt\n")
        assert program.name == "myprog"

    @pytest.mark.parametrize(
        "source, fragment",
        [
            (".text\n bogus r1\n", "unknown mnemonic"),
            (".text\n li r1\n", "expects 2 operand"),
            (".text\n li r99, 1\n", "invalid register"),
            (".text\n jmp nowhere\n", "undefined label"),
            (".text\nx:\nx:\n halt\n", "duplicate label"),
            (".text\n st.s r1, gp, 0\n", "cannot carry"),
            (".text\n jmp @99\n", "out of range"),
            (".data\nv: oops\n.text\n halt\n", "invalid numeric"),
        ],
    )
    def test_errors_carry_line_info(self, source, fragment):
        with pytest.raises(AssemblerError) as excinfo:
            assemble(source)
        assert fragment in str(excinfo.value)


class TestDisassembler:
    def test_roundtrip_instructions(self, count_program):
        text = disassemble(count_program)
        again = assemble(text)
        assert again.instructions == count_program.instructions
        assert dict(again.data) == dict(count_program.data)

    def test_roundtrip_preserves_directives(self):
        source = ".text\n add.s r1, r2, r3\n mul.lv r2, r1, r1\n halt\n"
        program = assemble(source)
        again = assemble(disassemble(program))
        assert again.instructions == program.instructions

    def test_roundtrip_sparse_data(self):
        program = build_program(
            [Instruction(Opcode.HALT)], data={0: 1, 7: 2.5}, name="sparse"
        )
        again = assemble(disassemble(program))
        assert dict(again.data) == {0: 1, 7: 2.5}


class TestProgram:
    def test_validation_rejects_bad_targets(self):
        with pytest.raises(ProgramError):
            build_program([Instruction(Opcode.JMP, target=5)])
        with pytest.raises(ProgramError):
            build_program([Instruction(Opcode.BEQZ, srcs=(1,))])

    def test_candidate_addresses(self, count_program):
        candidates = count_program.candidate_addresses
        # li, li, addi, slt, ld are candidates; st/bnez/out/halt are not.
        assert len(candidates) == 5

    def test_with_directives_returns_new_program(self, count_program):
        address = count_program.candidate_addresses[0]
        tagged = count_program.with_directives({address: Directive.STRIDE})
        assert tagged[address].directive is Directive.STRIDE
        assert count_program[address].directive is None
        assert len(tagged) == len(count_program)

    def test_with_directives_rejects_non_candidates(self, count_program):
        store_address = next(
            addr
            for addr, instr in enumerate(count_program.instructions)
            if instr.opcode is Opcode.ST
        )
        with pytest.raises(ProgramError):
            count_program.with_directives({store_address: Directive.STRIDE})

    def test_strip_directives(self, count_program):
        address = count_program.candidate_addresses[0]
        tagged = count_program.with_directives({address: Directive.LAST_VALUE})
        assert tagged.strip_directives().directives() == {}

    def test_directives_map(self, count_program):
        a, b = count_program.candidate_addresses[:2]
        tagged = count_program.with_directives(
            {a: Directive.STRIDE, b: Directive.LAST_VALUE}
        )
        assert tagged.directives() == {a: Directive.STRIDE, b: Directive.LAST_VALUE}
