"""Tests for the experiment harness (tiny scale, shared session context)."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, ExperimentTable, THRESHOLDS
from repro.experiments import percent_change
from repro.experiments.context import TABLE_ENTRIES, TABLE_WAYS
from repro.workloads import TABLE_4_1_NAMES


class TestExperimentTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("x", "t", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_and_row_map(self):
        table = ExperimentTable("x", "t", headers=["name", "value"])
        table.add_row("one", 1)
        table.add_row("two", 2)
        assert table.column("value") == [1, 2]
        assert table.row_map("name")["two"] == ["two", 2]

    def test_format_contains_all_cells(self):
        table = ExperimentTable("x", "title here", headers=["name", "value"])
        table.add_row("row1", 3.14159)
        text = table.format()
        assert "title here" in text
        assert "row1" in text
        assert "3.1" in text

    def test_percent_change(self):
        assert percent_change(110, 100) == pytest.approx(10.0)
        assert percent_change(90, 100) == pytest.approx(-10.0)
        assert percent_change(5, 0) == 0.0


class TestContext:
    def test_profiles_are_memoized(self, tiny_context):
        first = tiny_context.training_profile("129.compress", 0)
        second = tiny_context.training_profile("129.compress", 0)
        assert first is second

    def test_merged_profile_covers_runs(self, tiny_context):
        merged = tiny_context.merged_profile("129.compress")
        single = tiny_context.training_profile("129.compress", 0)
        address = next(iter(single.instructions))
        assert (
            merged.instructions[address].executions
            >= single.instructions[address].executions
        )

    def test_annotated_respects_threshold_monotonicity(self, tiny_context):
        strict = tiny_context.annotated("129.compress", 90.0)
        loose = tiny_context.annotated("129.compress", 50.0)
        assert set(strict.directives()) <= set(loose.directives())

    def test_disk_cache_roundtrip(self, tmp_path):
        context = ExperimentContext(scale=0.03, training_runs=1, cache_dir=tmp_path)
        image = context.training_profile("129.compress", 0)
        files = list(tmp_path.glob("profile/*/*.profile"))
        assert len(files) == 1
        fresh = ExperimentContext(scale=0.03, training_runs=1, cache_dir=tmp_path)
        loaded = fresh.training_profile("129.compress", 0)
        assert set(loaded.instructions) == set(image.instructions)

    def test_constants_match_paper(self):
        assert TABLE_ENTRIES == 512
        assert TABLE_WAYS == 2
        assert THRESHOLDS == (90.0, 80.0, 70.0, 60.0, 50.0)


class TestSharedComputations:
    BENCH = "129.compress"

    def test_classification_stats_cover_all_schemes(self, tiny_context):
        from repro.experiments.shared import (
            FSM_LABEL,
            classification_accuracy_stats,
            threshold_label,
        )

        stats = classification_accuracy_stats(tiny_context, self.BENCH)
        assert FSM_LABEL in stats
        for threshold in THRESHOLDS:
            assert threshold_label(threshold) in stats
        # Probe semantics: every scheme sees identical attempts.
        attempts = {s.attempts for s in stats.values()}
        assert len(attempts) == 1

    def test_profile_90_suppresses_more_mispredictions_than_50(self, tiny_context):
        from repro.experiments.shared import (
            classification_accuracy_stats,
            threshold_label,
        )

        stats = classification_accuracy_stats(tiny_context, self.BENCH)
        strict = stats[threshold_label(90.0)]
        loose = stats[threshold_label(50.0)]
        assert (
            strict.misprediction_classification_accuracy
            >= loose.misprediction_classification_accuracy
        )
        assert (
            loose.correct_classification_accuracy
            >= strict.correct_classification_accuracy
        )

    def test_finite_table_stats(self, tiny_context):
        from repro.experiments.shared import FSM_LABEL, finite_table_stats

        stats = finite_table_stats(tiny_context, self.BENCH)
        assert stats[FSM_LABEL].taken_correct > 0

    def test_ilp_results_baseline_present(self, tiny_context):
        from repro.experiments.shared import ilp_results

        results = ilp_results(tiny_context, self.BENCH)
        assert results["novp"].taken_predictions == 0
        assert results["novp"].ilp > 0


@pytest.mark.slow
class TestExperimentModules:
    """Smoke-run every experiment module at tiny scale."""

    def test_all_experiments_produce_tables(self, tiny_context):
        from repro.experiments.runner import EXPERIMENTS

        for identifier, run in EXPERIMENTS.items():
            table = run(tiny_context)
            assert isinstance(table, ExperimentTable)
            assert table.experiment_id == identifier
            assert table.rows, identifier
            assert table.format()

    def test_table_5_1_average_row_monotone(self, tiny_context):
        from repro.experiments import table_5_1

        table = table_5_1.run(tiny_context)
        average = table.row_map("benchmark")["average"][1:]
        assert average == sorted(average), "fraction should grow as threshold drops"

    def test_fig_4_2_mass_in_low_intervals(self, tiny_context):
        from repro.experiments import fig_4_2

        table = fig_4_2.run(tiny_context)
        for row in table.rows:
            name, low, *rest = row
            # Profiles transfer: the lowest interval dominates.
            assert low >= max(rest), name

    def test_table_5_2_profile_competitive(self, tiny_context):
        from repro.experiments import table_5_2

        table = table_5_2.run(tiny_context)
        wins = 0
        for row in table.rows:
            _name, sc, *profile_columns = row
            if max(profile_columns) >= sc:
                wins += 1
        # The paper: profile-guided beats SC "in most benchmarks".
        assert wins >= len(TABLE_4_1_NAMES) // 2 + 1
