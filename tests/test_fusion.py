"""Streaming fusion, the sketch wire format, and the redesigned API.

The contract under test: folding a fleet of profile images one at a
time through :class:`~repro.profiling.fusion.MergeAccumulator` is
*indistinguishable* from batch :func:`~repro.profiling.merge_profiles`
— any fold order, either ``require_common`` mode, image or sketch
transport — and the sketch codec is lossless at ``quantize=0`` with
fidelity degrading monotonically as quantization coarsens.
"""

from __future__ import annotations

import io
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling import (
    MergeAccumulator,
    ProfileSketch,
    SketchFormatError,
    common_addresses,
    decode_profile_payload,
    dumps_profile,
    dumps_sketch,
    encode_profile_payload,
    fidelity_report,
    fuse_images,
    loads_sketch,
    merge_profiles,
    read_any_profile,
    read_profile,
    save_profile,
    save_sketch,
)
from repro.profiling.collector import InstructionProfile, ProfileImage
from repro.profiling.image_io import ProfileFormatError

from tests.test_profile_image_invariants import canonical_counts, profile_images


def simple_image(name, addresses, *, scale=1):
    image = ProfileImage(name, run_label=name)
    for address in addresses:
        image.instructions[address] = InstructionProfile(
            address, 40 * scale, 30 * scale, 20 * scale, 10 * scale
        )
    return image


# -- streaming == batch ------------------------------------------------------


class TestStreamingEqualsBatch:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(profile_images(), min_size=1, max_size=4))
    def test_fold_order_is_irrelevant_and_matches_batch(self, images):
        for require_common in (False, True):
            batch = merge_profiles(images, require_common=require_common)
            for ordering in (images, list(reversed(images))):
                accumulator = MergeAccumulator(require_common=require_common)
                for image in ordering:
                    accumulator.fold(image)
                assert canonical_counts(accumulator.result()) == canonical_counts(
                    batch
                )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(profile_images(), min_size=1, max_size=3))
    def test_sketch_transport_matches_batch(self, images):
        """Fold through the wire format: image -> sketch bytes -> image."""
        batch = merge_profiles(images)
        accumulator = MergeAccumulator()
        for image in images:
            payload = dumps_sketch(ProfileSketch.from_image(image))
            accumulator.fold(loads_sketch(payload).to_image())
        assert canonical_counts(accumulator.result()) == canonical_counts(batch)

    def test_streamed_dump_is_byte_identical_to_batch(self):
        images = [
            simple_image("a", [1, 2, 3]),
            simple_image("b", [2, 3, 4]),
            simple_image("c", [2, 3]),
        ]
        for require_common in (False, True):
            batch = merge_profiles(images, require_common=require_common)
            streamed = fuse_images(images, require_common=require_common)
            assert dumps_profile(streamed) == dumps_profile(batch)

    def test_result_requires_at_least_one_image(self):
        with pytest.raises(ValueError, match="zero profile images"):
            MergeAccumulator().result()

    def test_fold_rejects_unknown_sources(self):
        with pytest.raises(TypeError):
            MergeAccumulator().fold(42)

    def test_thousand_image_fold_stays_bounded(self):
        """The acceptance criterion: a lazy fleet folds in O(1) images.

        The generator materializes one image at a time and the
        accumulator's live address set never exceeds the first image's,
        so memory is bounded by a single image regardless of fleet size.
        """
        addresses = list(range(0, 16, 2))

        def fleet():
            for index in range(1_000):
                yield simple_image(f"edge-{index}", addresses)

        accumulator = MergeAccumulator(require_common=True)
        accumulator.update(fleet())
        assert accumulator.images_folded == 1_000
        assert accumulator.live_addresses == len(addresses)
        merged = accumulator.result()
        assert merged.instructions[0].executions == 40 * 1_000


# -- sketch codec ------------------------------------------------------------


class TestSketchCodec:
    @settings(max_examples=150, deadline=None)
    @given(profile_images())
    def test_quantize_zero_is_lossless(self, image):
        sketch = ProfileSketch.from_image(image, quantize=0)
        assert loads_sketch(dumps_sketch(sketch)).to_image() == image

    @settings(max_examples=60, deadline=None)
    @given(profile_images(), st.integers(min_value=1, max_value=8))
    def test_quantization_preserves_count_ordering(self, image, level):
        decoded = loads_sketch(
            dumps_sketch(ProfileSketch.from_image(image, quantize=level))
        ).to_image()
        for address, original in image.instructions.items():
            profile = decoded.instructions[address]
            assert profile.executions <= original.executions
            assert (
                0
                <= profile.nonzero_stride_correct
                <= profile.correct
                <= profile.attempts
                <= profile.executions
            )

    def test_fidelity_degrades_monotonically(self):
        images = [
            simple_image(f"edge-{index}", range(0, 40, 3), scale=7 + index)
            for index in range(4)
        ]
        report = fidelity_report(images, levels=(0, 1, 2, 4, 8))
        assert report["images"] == 4
        errors = [level["mean_abs_count_error"] for level in report["levels"]]
        assert errors[0] == 0.0
        assert report["levels"][0]["classification_agreement"] == 1.0
        assert errors == sorted(errors)

    def test_compression_beats_text_dump_by_5x(self):
        from repro.telemetry.bench import bench_fuse

        metrics = bench_fuse(24, 96)
        assert metrics["compression_ratio"] >= 5.0

    def test_truncated_sketch_rejected(self):
        payload = dumps_sketch(ProfileSketch.from_image(simple_image("p", [1, 2])))
        with pytest.raises(SketchFormatError):
            loads_sketch(payload[:-3])

    def test_bad_magic_rejected(self):
        with pytest.raises(SketchFormatError):
            loads_sketch(b"# not-a-sketch\n")

    def test_sketch_error_is_a_profile_format_error(self):
        """Callers that already catch ProfileFormatError keep working."""
        assert issubclass(SketchFormatError, ProfileFormatError)


# -- redesigned profiling API ------------------------------------------------


class TestMergeApi:
    def test_merge_accepts_open_text_streams(self):
        first = simple_image("a", [1, 2])
        second = simple_image("b", [2, 3])
        merged = merge_profiles(
            [io.StringIO(dumps_profile(first)), io.StringIO(dumps_profile(second))]
        )
        assert canonical_counts(merged) == canonical_counts(
            merge_profiles([first, second])
        )

    def test_merge_options_are_keyword_only(self):
        with pytest.raises(TypeError):
            merge_profiles([simple_image("a", [1])], "name")

    def test_common_addresses_early_exits_on_empty_intersection(self):
        """A dead intersection must stop consuming the stream."""

        def stream():
            yield simple_image("a", [1])
            yield simple_image("b", [2])
            raise AssertionError("stream consumed past the empty intersection")

        assert common_addresses(stream()) == []

    def test_common_addresses_intersects(self):
        images = [simple_image("a", [1, 2, 3]), simple_image("b", [2, 3, 4])]
        assert common_addresses(images) == [2, 3]


class TestAtomicIo:
    def test_save_profile_accepts_path_and_leaves_no_temp(self, tmp_path):
        image = simple_image("p", [1, 2, 3])
        target = tmp_path / "out.profile"
        save_profile(image, target)
        assert read_profile(target) == image
        assert [p.name for p in tmp_path.iterdir()] == ["out.profile"]

    def test_failed_save_preserves_existing_file(self, tmp_path):
        image = simple_image("p", [1])
        target = tmp_path / "out.profile"
        save_profile(image, target)
        before = target.read_bytes()
        with pytest.raises(AttributeError):
            save_profile(object(), target)
        assert target.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["out.profile"]

    def test_save_sketch_round_trips_via_read_any_profile(self, tmp_path):
        image = simple_image("p", [3, 5])
        target = tmp_path / "out.sketch"
        save_sketch(ProfileSketch.from_image(image), target)
        assert read_any_profile(target) == image
        assert read_any_profile(os.fspath(target)) == image


# -- service contract --------------------------------------------------------


class TestFuseJob:
    def _payloads(self, images):
        return tuple(
            encode_profile_payload(dumps_profile(image).encode("utf-8"))
            for image in images
        )

    def test_round_trips_through_the_wire_dict(self):
        from repro.service.api import FuseJob

        job = FuseJob(profiles=("# repro-profile-image v1\n",), name="fleet")
        assert FuseJob.from_dict(job.to_dict()) == job

    def test_from_dict_rejects_bad_profiles(self):
        from repro.service.api import ApiError, FuseJob

        for profiles in ([], [""], [42], "not-a-list"):
            with pytest.raises(ApiError):
                FuseJob.from_dict(
                    {"kind": "fuse", "profiles": profiles, "name": "x"}
                )

    def test_engine_fuse_matches_batch_bytes(self):
        from repro.service.engine import ServiceEngine

        from repro.service.api import FuseJob

        images = [simple_image("a", [1, 2, 3]), simple_image("b", [2, 3, 4])]
        # Mixed transport: one text image, one base64 sketch.
        payloads = (
            encode_profile_payload(dumps_profile(images[0]).encode("utf-8")),
            encode_profile_payload(
                dumps_sketch(ProfileSketch.from_image(images[1]))
            ),
        )
        output, meta = ServiceEngine().execute(
            FuseJob(profiles=payloads, require_common=True)
        )
        batch = merge_profiles(images, require_common=True)
        assert output == dumps_profile(batch)
        assert meta["images"] == 2
        assert meta["sketches"] == 1

    def test_decode_rejects_garbage_payloads(self):
        with pytest.raises(ProfileFormatError):
            decode_profile_payload("this is neither text image nor base64 sketch")


# -- CLI ---------------------------------------------------------------------


class TestFuseCli:
    def _write_fleet(self, tmp_path, count=3):
        for index in range(count):
            image = simple_image(f"edge-{index}", [1, 2, 3 + index])
            save_profile(image, tmp_path / f"run-{index}.profile")
        return str(tmp_path / "run-*.profile")

    def test_streaming_and_batch_outputs_are_byte_identical(self, tmp_path):
        from repro.cli import main

        pattern = self._write_fleet(tmp_path)
        stream_out = tmp_path / "stream.profile"
        batch_out = tmp_path / "batch.profile"
        assert main(["fuse", pattern, "-o", str(stream_out)]) == 0
        assert main(["fuse", pattern, "-o", str(batch_out), "--batch"]) == 0
        assert stream_out.read_bytes() == batch_out.read_bytes()

    def test_sketch_output_and_report(self, tmp_path):
        import json

        from repro.cli import main

        pattern = self._write_fleet(tmp_path)
        sketch_out = tmp_path / "merged.sketch"
        report_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "fuse",
                    pattern,
                    "-o",
                    str(sketch_out),
                    "--sketch",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        merged = read_any_profile(sketch_out)
        assert sorted(merged.instructions) == [1, 2, 3, 4, 5]
        report = json.loads(report_path.read_text())
        assert report["images"] == 3
        assert report["levels"][0]["quantize"] == 0

    def test_no_matching_profiles_is_an_error(self, tmp_path):
        from repro.cli import main

        assert main(["fuse", str(tmp_path / "missing-*.profile")]) == 2
