"""Unit tests for the mini-C lexer, parser and semantic analyzer."""

from __future__ import annotations

import pytest

from repro.lang import LexError, ParseError, SemanticError, parse, tokenize
from repro.lang import astnodes as ast
from repro.lang.semantics import analyze
from repro.lang.tokens import TokenKind


class TestLexer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while whilefoo")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
        ]

    def test_numbers(self):
        tokens = tokenize("42 0x1F 3.5 2e3 1.5e-2 .25")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 31, 3.5, 2000.0, 0.015, 0.25]
        assert tokens[0].kind is TokenKind.INT_LITERAL
        assert tokens[2].kind is TokenKind.FLOAT_LITERAL

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\\'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 92]

    def test_comments_stripped(self):
        tokens = tokenize("1 // line\n/* block\nmore */ 2")
        assert [t.value for t in tokens[:-1]] == [1, 2]

    def test_line_numbers(self):
        tokens = tokenize("1\n2\n  3")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_two_char_operators(self):
        tokens = tokenize("<= >= == != && || << >>")
        assert [t.value for t in tokens[:-1]] == [
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>"
        ]

    @pytest.mark.parametrize("bad", ["@", "$", "'unterminated", "/* open", "0x"])
    def test_lex_errors(self, bad):
        with pytest.raises(LexError):
            tokenize(bad)


class TestParser:
    def test_global_declarations(self):
        unit = parse("int x; float y = 1.5; int arr[4] = {1, 2, 3, 4};")
        assert len(unit.globals) == 3
        assert unit.globals[2].size == 4
        assert list(unit.globals[2].init) == [1, 2, 3, 4]

    def test_negative_initializer(self):
        unit = parse("int x = -5;")
        assert list(unit.globals[0].init) == [-5]

    def test_function_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        function = unit.functions[0]
        assert function.params == [(ast.Type.INT, "a"), (ast.Type.INT, "b")]
        assert isinstance(function.body.statements[0], ast.Return)

    def test_precedence(self):
        unit = parse("void main() { int x; x = 1 + 2 * 3; }")
        assign = unit.functions[0].body.statements[1]
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_cast_vs_parenthesized(self):
        unit = parse("void main() { int x; float f; x = (int)f; x = (x); }")
        statements = unit.functions[0].body.statements
        assert isinstance(statements[2].value, ast.Unary)
        assert statements[2].value.op == "(int)"
        assert isinstance(statements[3].value, ast.VarRef)

    def test_dangling_else_binds_inner(self):
        unit = parse(
            "void main() { int x; if (1) if (2) x = 1; else x = 2; }"
        )
        outer = unit.functions[0].body.statements[1]
        assert outer.else_body is None
        inner = outer.then_body.statements[0]
        assert inner.else_body is not None

    def test_for_with_empty_slots(self):
        unit = parse("void main() { for (;;) { break; } }")
        loop = unit.functions[0].body.statements[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    @pytest.mark.parametrize(
        "source",
        [
            "int;",
            "void main() { 1 + 2; }",           # bare non-call expression
            "void main() { x = ; }",
            "void main() { if 1 {} }",
            "void main() { int arr[3]; }",       # local arrays unsupported
            "int f(void v) { return 0; }",
            "void main() { (1 + 2) = 3; }",
        ],
    )
    def test_parse_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)


class TestSemantics:
    def check(self, source):
        return analyze(parse(source))

    def test_happy_path(self):
        info = self.check("int g; void main() { g = 1; }")
        assert "g" in info.globals
        assert "main" in info.functions

    def test_global_data_layout(self):
        info = self.check("int a; int b[3]; float c; void main() { }")
        assert info.globals["a"].address == 0
        assert info.globals["b"].base_address == 1
        assert info.globals["c"].address == 4
        assert info.data_size == 5

    def test_initializers_fill_data(self):
        info = self.check("int a = 9; float f = 2.5; void main() { }")
        assert info.data[0] == 9
        assert info.data[1] == 2.5

    def test_implicit_conversions_inserted(self):
        info = self.check("float f; void main() { f = 1; }")
        assign = info.functions["main"].decl.body.statements[0]
        assert isinstance(assign.value, ast.Unary)
        assert assign.value.op == "(float)"

    def test_binary_promotion(self):
        info = self.check("float f; void main() { f = f + 1; }")
        assign = info.functions["main"].decl.body.statements[0]
        assert assign.value.right.op == "(float)"

    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("void main() { x = 1; }", "undefined variable"),
            ("void main() { foo(); }", "undefined function"),
            ("int g; int g; void main() { }", "duplicate global"),
            ("void main() { int a; int a; }", "duplicate declaration"),
            ("int f(int a, int a) { return 0; }", "duplicate parameter"),
            ("void main() { break; }", "outside a loop"),
            ("void f() { } void main() { int x; x = f(); }", "void value"),
            ("int f() { return 1; } void main() { f(1); }", "expects 0"),
            ("void main() { return 1; }", "void but returns"),
            ("int f() { return; } void main() { }", "must return"),
            ("float f; void main() { f = f % 2.0; }", "requires int"),
            ("float f; void main() { if (f) { } }", "requires an int"),
            ("int a[3]; void main() { a = 1; }", "whole array"),
            ("int a[3]; void main() { out(a); }", "without an index"),
            ("int g; void main() { g[0] = 1; }", "not an array"),
            ("int x; void main() { }", "has no main"),
        ],
    )
    def test_semantic_errors(self, source, fragment):
        if "has no main" in fragment:
            source = "int x;"
        with pytest.raises(SemanticError) as excinfo:
            self.check(source)
        assert fragment in str(excinfo.value)

    def test_main_with_params_rejected(self):
        with pytest.raises(SemanticError):
            self.check("void main(int x) { }")
