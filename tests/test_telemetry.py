"""Tests for the telemetry registry, exporters, and pipeline wiring."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.telemetry import (
    NullTelemetry,
    Telemetry,
    cache_summary,
    enable,
    format_text,
    get_registry,
    hit_rate,
    set_registry,
    to_json,
    use_registry,
)
from repro.telemetry.registry import _NULL_INSTRUMENT, _NULL_SPAN


class TestInstruments:
    def test_counter_accumulates(self):
        registry = Telemetry()
        registry.counter("a").add()
        registry.counter("a").add(41)
        assert registry.counter("a").value == 42

    def test_gauge_last_value_wins(self):
        registry = Telemetry()
        registry.gauge("g").set(1.5)
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5

    def test_timer_accumulates_seconds_and_count(self):
        registry = Telemetry()
        timer = registry.timer("t")
        timer.add(0.25)
        timer.add(0.75)
        assert timer.seconds == pytest.approx(1.0)
        assert timer.count == 2
        assert timer.mean == pytest.approx(0.5)

    def test_timer_context_manager(self):
        registry = Telemetry()
        with registry.timer("t").time():
            time.sleep(0.01)
        timer = registry.timer("t")
        assert timer.count == 1
        assert timer.seconds > 0.0

    def test_instruments_are_stable_identities(self):
        registry = Telemetry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.timer("y") is registry.timer("y")
        assert registry.gauge("z") is registry.gauge("z")


class TestSpans:
    def test_spans_nest_by_slash_path(self):
        registry = Telemetry()
        with registry.span("suite"):
            assert registry.current_path == "suite"
            with registry.span("execute"):
                assert registry.current_path == "suite/execute"
        assert registry.current_path == ""
        spans = registry.snapshot()["spans"]
        assert set(spans) == {"suite", "suite/execute"}
        assert spans["suite"]["seconds"] >= spans["suite/execute"]["seconds"]

    def test_repeated_spans_aggregate(self):
        registry = Telemetry()
        for _ in range(3):
            with registry.span("phase"):
                pass
        assert registry.snapshot()["spans"]["phase"]["count"] == 3

    def test_span_records_on_exception(self):
        registry = Telemetry()
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("x")
        assert registry.current_path == ""
        assert "boom" in registry.snapshot()["spans"]


class TestEventHooks:
    def test_hooks_fire_with_payload(self):
        registry = Telemetry()
        seen = []
        registry.on("job.done", lambda event, payload: seen.append((event, payload)))
        registry.emit("job.done", kind="profile", seconds=1.0)
        registry.emit("other.event", ignored=True)
        assert seen == [("job.done", {"kind": "profile", "seconds": 1.0})]

    def test_clear_keeps_hooks(self):
        registry = Telemetry()
        seen = []
        registry.counter("c").add(5)
        registry.on("e", lambda event, payload: seen.append(event))
        registry.clear()
        assert registry.snapshot()["counters"] == {}
        registry.emit("e")
        assert seen == ["e"]


class TestMerge:
    def test_merge_adds_counters_and_timers(self):
        worker = Telemetry()
        worker.counter("machine.instructions").add(100)
        worker.timer("machine.run").add(0.5)
        coordinator = Telemetry()
        coordinator.counter("machine.instructions").add(10)
        coordinator.timer("machine.run").add(0.1)
        coordinator.merge(worker.snapshot())
        assert coordinator.counter("machine.instructions").value == 110
        assert coordinator.timer("machine.run").seconds == pytest.approx(0.6)
        assert coordinator.timer("machine.run").count == 2

    def test_merge_gauges_take_incoming(self):
        worker = Telemetry()
        worker.gauge("g").set(9)
        coordinator = Telemetry()
        coordinator.gauge("g").set(1)
        coordinator.merge(worker.snapshot())
        assert coordinator.gauge("g").value == 9

    def test_merge_reroots_spans_under_prefix(self):
        worker = Telemetry()
        with worker.span("collect"):
            pass
        coordinator = Telemetry()
        coordinator.merge(worker.snapshot(), prefix="suite/execute")
        assert "suite/execute/collect" in coordinator.snapshot()["spans"]


class TestNullRegistry:
    def test_default_registry_is_null(self):
        registry = get_registry()
        assert isinstance(registry, Telemetry)
        if not registry.enabled:
            assert isinstance(registry, NullTelemetry)

    def test_null_instruments_are_shared_singletons(self):
        """The disabled cost is a dict-free lookup: no allocation per call."""
        registry = NullTelemetry()
        assert registry.counter("a") is registry.counter("b") is _NULL_INSTRUMENT
        assert registry.timer("t") is _NULL_INSTRUMENT
        assert registry.gauge("g") is _NULL_INSTRUMENT
        assert registry.span("s") is registry.span("other") is _NULL_SPAN

    def test_null_registry_records_nothing(self):
        registry = NullTelemetry()
        registry.counter("c").add(10)
        registry.gauge("g").set(5)
        registry.timer("t").add(1.0)
        with registry.span("s"):
            pass
        registry.emit("event", data=1)
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "timers": {}, "spans": {}}

    def test_null_overhead_guard(self):
        """A null-registry instrument call must stay trivially cheap."""
        registry = NullTelemetry()
        started = time.perf_counter()
        for _ in range(100_000):
            registry.counter("machine.instructions").add(1)
        elapsed = time.perf_counter() - started
        # ~0.1 us/op on any plausible machine; the bound is deliberately
        # generous to stay robust under CI noise while still catching an
        # accidental allocation-per-call regression by an order of magnitude.
        assert elapsed < 2.0


class TestGlobalRegistry:
    def test_use_registry_scopes_and_restores(self):
        previous = get_registry()
        live = Telemetry()
        with use_registry(live) as installed:
            assert installed is live
            assert get_registry() is live
        assert get_registry() is previous

    def test_set_registry_returns_previous(self):
        previous = get_registry()
        live = Telemetry()
        try:
            assert set_registry(live) is previous
            assert get_registry() is live
        finally:
            set_registry(previous)

    def test_enable_is_idempotent(self):
        previous = get_registry()
        try:
            first = enable()
            assert first.enabled
            first.counter("kept").add(1)
            second = enable()
            assert second is first
            assert second.counter("kept").value == 1
        finally:
            set_registry(previous)


class TestExport:
    def test_to_json_round_trips_sorted(self):
        registry = Telemetry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        payload = json.loads(to_json(registry))
        assert payload["counters"] == {"a": 1, "b": 2}
        assert to_json(registry) == to_json(registry.snapshot())

    def test_format_text_mentions_every_metric(self):
        registry = Telemetry()
        registry.counter("machine.instructions").add(5)
        registry.gauge("wall").set(1.25)
        registry.timer("run").add(0.5)
        with registry.span("suite"):
            pass
        text = format_text(registry)
        for fragment in ("machine.instructions", "wall", "run", "suite"):
            assert fragment in text

    def test_format_text_empty(self):
        assert format_text(Telemetry()) == "(no telemetry recorded)"

    def test_hit_rate(self):
        assert hit_rate(3, 1) == pytest.approx(75.0)
        assert hit_rate(0, 0) == 0.0

    def test_cache_summary_parses_counters(self):
        registry = Telemetry()
        registry.counter("cache.hit.profile").add(3)
        registry.counter("cache.miss.profile").add(1)
        registry.counter("cache.store.profile").add(1)
        registry.counter("cache.corrupt.experiment").add(2)
        registry.counter("unrelated.counter").add(9)
        summary = cache_summary(registry)
        assert summary["profile"]["hits"] == 3
        assert summary["profile"]["hit_rate"] == pytest.approx(75.0)
        assert summary["experiment"]["corrupt"] == 2
        assert "unrelated" not in summary


class TestPipelineWiring:
    def test_executor_counts_retired_instructions(self):
        from repro.isa import assemble
        from repro.machine import run_program

        program = assemble(
            """
.text
    li r1, 0
    li r2, 20
loop:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, loop
    halt
"""
        )
        with use_registry(Telemetry()) as registry:
            result = run_program(program)
        counters = registry.snapshot()["counters"]
        assert counters["machine.instructions"] == result.instruction_count
        assert registry.timer("machine.run").count == 1

    def test_profiling_and_prediction_metrics(self):
        from repro.core import HardwareScheme, evaluate_scheme, run_methodology

        source = """
void main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 30; i = i + 1) { total = total + i; }
    out(total);
}
"""
        with use_registry(Telemetry()) as registry:
            result = run_methodology(source, train_inputs=[[]])
            evaluate_scheme(HardwareScheme(result.program), [], entries=64)
        counters = registry.snapshot()["counters"]
        assert counters["profiling.runs"] == 1
        assert counters["profiling.records"] > 0
        assert counters["core.simulations"] == 1
        assert counters["predictor.lookups"] > 0

    def test_evaluate_scheme_accepts_explicit_registry(self):
        from repro.core import HardwareScheme, evaluate_scheme
        from repro.isa import assemble

        program = assemble(
            """
.text
    li r1, 0
    li r2, 10
loop:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, loop
    halt
"""
        )
        registry = Telemetry()
        evaluate_scheme(HardwareScheme(program), [], entries=64, telemetry=registry)
        assert registry.counter("machine.instructions").value > 0
        assert not get_registry().enabled or get_registry() is not registry

    def test_telemetry_does_not_change_table_output(self, tiny_context):
        from repro.experiments.runner import run_experiments

        def tables_only(text):
            # The "[<id> finished in Xs]" footer is wall-clock and differs
            # between *any* two runs; everything else must match exactly.
            return [
                line
                for line in text.splitlines()
                if not (line.startswith("[") and "finished in" in line)
            ]

        plain = io.StringIO()
        run_experiments(["table-2.1"], tiny_context, stream=plain)
        instrumented = io.StringIO()
        with use_registry(Telemetry()):
            run_experiments(["table-2.1"], tiny_context, stream=instrumented)
        assert tables_only(instrumented.getvalue()) == tables_only(plain.getvalue())


@pytest.mark.slow
class TestWorkerMerge:
    def test_parallel_counters_equal_serial(self):
        """Worker snapshots merged at the coordinator reproduce serial totals."""
        from repro.experiments.context import ExperimentContext
        from repro.experiments.runner import run_experiments

        watched = ("machine.instructions", "profiling.records", "profiling.runs")
        totals = {}
        for jobs in (1, 2):
            context = ExperimentContext(scale=0.01, training_runs=2, cache_dir=None)
            with use_registry(Telemetry()) as registry:
                run_experiments(["fig-4.2"], context, stream=io.StringIO(), jobs=jobs)
            snapshot = registry.snapshot()
            totals[jobs] = {name: snapshot["counters"][name] for name in watched}
            assert "suite" in snapshot["spans"]
            assert "suite/execute" in snapshot["spans"]
        assert totals[1] == totals[2]
