"""Cross-module integration tests: the full methodology end to end."""

from __future__ import annotations

import pytest

from repro.annotate import AnnotationPolicy
from repro.core import (
    HardwareClassification,
    HardwareScheme,
    PredictionEngine,
    ProfileClassification,
    ProfileScheme,
    evaluate_scheme,
    run_methodology,
    simulate_prediction,
)
from repro.ilp import measure_ilp
from repro.isa import assemble, disassemble
from repro.machine import run_program
from repro.predictors import StridePredictor
from repro.profiling import collect_profile
from repro.workloads import get_workload

SCALE = 0.05


@pytest.fixture(scope="module")
def gcc_methodology():
    workload = get_workload("126.gcc")
    return workload, run_methodology(
        workload.compile(),
        workload.training_inputs(count=3, scale=SCALE),
        policy=AnnotationPolicy(accuracy_threshold=80.0),
    )


class TestAnnotatedBinaryEquivalence:
    """Phase 3 must not change program behaviour, only directive bits."""

    def test_same_outputs(self, gcc_methodology):
        workload, result = gcc_methodology
        inputs = workload.test_inputs(scale=SCALE)
        original = run_program(result.program, inputs)
        annotated = run_program(result.annotated, inputs)
        assert original.outputs == annotated.outputs
        assert original.instruction_count == annotated.instruction_count

    def test_assembly_roundtrip_of_annotated_binary(self, gcc_methodology):
        workload, result = gcc_methodology
        text = disassemble(result.annotated)
        reassembled = assemble(text)
        assert reassembled.instructions == result.annotated.instructions
        inputs = workload.test_inputs(scale=SCALE)
        assert (
            run_program(reassembled, inputs).outputs
            == run_program(result.annotated, inputs).outputs
        )

    def test_directive_suffixes_in_listing(self, gcc_methodology):
        _workload, result = gcc_methodology
        text = disassemble(result.annotated)
        assert ".s " in text or ".lv " in text


class TestProfileSimulationConsistency:
    """The profiler and the simulation driver must agree on the protocol."""

    def test_profile_matches_always_scheme_simulation(self, gcc_methodology):
        workload, result = gcc_methodology
        inputs = workload.training_inputs(count=3, scale=SCALE)[0]
        image = collect_profile(result.program, inputs)
        stats = simulate_prediction(
            result.program, inputs, predictor=StridePredictor()
        )
        total_attempts = sum(p.attempts for p in image.instructions.values())
        total_correct = sum(p.correct for p in image.instructions.values())
        assert total_attempts == stats.attempts
        assert total_correct == stats.would_correct

    def test_training_profile_predicts_test_behaviour(self, gcc_methodology):
        """The whole premise: training accuracy transfers to test inputs."""
        workload, result = gcc_methodology
        test_image = collect_profile(
            result.program, workload.test_inputs(scale=SCALE)
        )
        tagged = set(result.annotated.directives())
        accuracies = [
            test_image.instructions[address].accuracy
            for address in tagged
            if address in test_image.instructions
            and test_image.instructions[address].attempts >= 5
        ]
        assert accuracies, "tagged instructions must appear on test inputs"
        high = sum(1 for accuracy in accuracies if accuracy >= 60.0)
        assert high / len(accuracies) > 0.8


class TestSchemeComparison:
    def test_profile_scheme_cuts_mispredictions(self, gcc_methodology):
        workload, result = gcc_methodology
        inputs = workload.test_inputs(scale=SCALE)
        profile_stats = evaluate_scheme(ProfileScheme(result), inputs)
        hardware_stats = evaluate_scheme(HardwareScheme(result.program), inputs)
        assert profile_stats.taken_incorrect < hardware_stats.taken_incorrect
        assert profile_stats.taken_accuracy > hardware_stats.taken_accuracy

    def test_value_prediction_raises_ilp(self, gcc_methodology):
        workload, result = gcc_methodology
        inputs = workload.test_inputs(scale=SCALE)
        baseline = measure_ilp(result.program, inputs)
        annotated = result.annotated
        predicted = measure_ilp(
            annotated,
            inputs,
            engine=PredictionEngine(
                annotated,
                predictor=StridePredictor(512, 2),
                scheme=ProfileClassification(annotated),
            ),
        )
        assert predicted.ilp > baseline.ilp
        assert predicted.instructions == baseline.instructions

    def test_hardware_scheme_also_raises_ilp(self, gcc_methodology):
        workload, result = gcc_methodology
        inputs = workload.test_inputs(scale=SCALE)
        baseline = measure_ilp(result.program, inputs)
        predicted = measure_ilp(
            result.program,
            inputs,
            engine=PredictionEngine(
                result.program,
                predictor=StridePredictor(512, 2),
                scheme=HardwareClassification(),
            ),
        )
        assert predicted.ilp > baseline.ilp


class TestDeterminism:
    """Every stage must be bit-for-bit repeatable."""

    def test_methodology_is_deterministic(self):
        workload = get_workload("129.compress")
        def build():
            return run_methodology(
                workload.compile(),
                workload.training_inputs(count=2, scale=SCALE),
                policy=AnnotationPolicy(accuracy_threshold=70.0),
            )
        first, second = build(), build()
        assert first.annotated.directives() == second.annotated.directives()

    def test_ilp_is_deterministic(self):
        workload = get_workload("129.compress")
        program = workload.compile()
        inputs = workload.test_inputs(scale=SCALE)
        assert (
            measure_ilp(program, inputs).cycles
            == measure_ilp(program, inputs).cycles
        )
