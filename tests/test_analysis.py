"""Unit tests for basic blocks, CFG and critical-path analysis."""

from __future__ import annotations

import pytest

from repro.analysis import (
    BasicBlock,
    analyze_blocks,
    basic_blocks,
    block_critical_path,
    block_of,
    block_statistics,
    control_flow_graph,
    find_leaders,
    predictable_addresses,
    summarize_paths,
)
from repro.annotate import AnnotationPolicy
from repro.isa import assemble
from repro.lang import compile_source
from repro.profiling import collect_profile

BRANCHY = """
.text
    li r1, 0          ; 0 leader (entry)
    li r2, 10         ; 1
loop:
    addi r1, r1, 1    ; 2 leader (branch target)
    slt r3, r1, r2    ; 3
    bnez r3, loop     ; 4
    out r1            ; 5 leader (after branch)
    halt              ; 6
"""


class TestBasicBlocks:
    def test_leaders(self):
        program = assemble(BRANCHY)
        assert find_leaders(program) == {0, 2, 5}

    def test_partition_covers_code_exactly(self):
        program = assemble(BRANCHY)
        blocks = basic_blocks(program)
        covered = []
        for block in blocks:
            covered.extend(block.addresses)
        assert covered == list(range(len(program)))

    def test_block_boundaries(self):
        program = assemble(BRANCHY)
        blocks = basic_blocks(program)
        assert [(b.start, b.end) for b in blocks] == [(0, 2), (2, 5), (5, 7)]

    def test_block_of_lookup(self):
        program = assemble(BRANCHY)
        blocks = basic_blocks(program)
        assert block_of(blocks, 3) == blocks[1]
        assert block_of(blocks, 0) == blocks[0]
        assert block_of(blocks, 6) == blocks[2]
        with pytest.raises(ValueError):
            block_of(blocks, 99)

    def test_empty_program(self):
        from repro.isa import build_program

        assert basic_blocks(build_program([])) == []

    def test_statistics(self):
        program = assemble(BRANCHY)
        count, mean, largest = block_statistics(program)
        assert count == 3
        assert largest == 3
        assert mean == pytest.approx(7 / 3)


class TestControlFlowGraph:
    def test_branch_edges(self):
        program = assemble(BRANCHY)
        cfg = control_flow_graph(program)
        assert set(cfg[2]) == {2, 5}   # loop back-edge + fall-through
        assert cfg[0] == [2]           # straight-line into the loop
        assert cfg[5] == []            # ends in halt

    def test_call_has_target_and_fallthrough(self):
        program = assemble(
            ".text\n call fn\n out r24\n halt\nfn:\n li r24, 1\n jr ra\n"
        )
        cfg = control_flow_graph(program)
        assert set(cfg[0]) == {3, 1}   # callee entry + return continuation
        assert cfg[3] == []            # jr: dynamic successor

    def test_jump_only_target(self):
        program = assemble(".text\n jmp end\n nop\nend:\n halt\n")
        cfg = control_flow_graph(program)
        assert cfg[0] == [2]


class TestCriticalPath:
    def test_serial_block(self):
        program = assemble(
            ".text\n li r1, 1\n addi r1, r1, 1\n addi r1, r1, 1\n halt\n"
        )
        block = BasicBlock(0, 3)
        assert block_critical_path(program, block) == 3

    def test_parallel_block(self):
        program = assemble(".text\n li r1, 1\n li r2, 2\n li r3, 3\n halt\n")
        block = BasicBlock(0, 3)
        assert block_critical_path(program, block) == 1

    def test_predictable_producer_collapses_chain(self):
        program = assemble(
            ".text\n li r1, 1\n addi r2, r1, 1\n addi r3, r2, 1\n halt\n"
        )
        block = BasicBlock(0, 3)
        assert block_critical_path(program, block) == 3
        # If the middle addi is predictable, its consumer starts early.
        assert block_critical_path(program, block, predictable={1}) == 2
        # All predictable -> everything issues in the first cycle.
        assert block_critical_path(program, block, predictable={0, 1, 2}) == 1

    def test_memory_serialization(self):
        program = assemble(
            ".text\n li r1, 1\n st r1, gp, 0\n ld r2, gp, 0\n addi r3, r2, 1\n halt\n"
        )
        block = BasicBlock(0, 4)
        # li(1) -> st(2) -> ld(3) -> addi(4)
        assert block_critical_path(program, block) == 4

    def test_height_never_increases_with_prediction(self):
        source = """
        int t[8];
        void main() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 8; i = i + 1) {
                t[i] = i * 3;
                acc = acc + t[i];
            }
            out(acc);
        }
        """
        program = compile_source(source)
        image = collect_profile(program)
        paths = analyze_blocks(program, image, AnnotationPolicy(50.0))
        for path in paths:
            assert path.predicted_length <= path.length
            assert path.shortening >= 0
            assert path.speedup >= 1.0

    def test_predictable_addresses_respects_policy(self):
        program = assemble(BRANCHY)
        image = collect_profile(program)
        strict = predictable_addresses(program, image, AnnotationPolicy(99.0))
        loose = predictable_addresses(program, image, AnnotationPolicy(10.0))
        assert strict <= loose
        assert 2 in loose  # the loop counter

    def test_summary_of_empty(self):
        summary = summarize_paths([])
        assert summary.blocks == 0
        assert summary.relative_shortening == 0.0

    def test_min_size_filter(self):
        program = assemble(BRANCHY)
        all_paths = analyze_blocks(program, min_size=1)
        big_paths = analyze_blocks(program, min_size=3)
        assert len(big_paths) < len(all_paths)
