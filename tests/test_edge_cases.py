"""Edge-case tests across modules: zero denominators, boundaries, misuse."""

from __future__ import annotations

import pytest

from repro.core import PredictionStats
from repro.core.results import AddressStats
from repro.isa import AssemblerError, Opcode, assemble
from repro.machine import (
    ExecutionError,
    InstructionBudgetExceeded,
    run_program,
)
from repro.profiling import InstructionProfile, ProfileImage
from repro.workloads import Workload


class TestPredictionStatsEdges:
    def test_zero_attempts(self):
        stats = PredictionStats()
        assert stats.would_incorrect == 0
        assert stats.taken_incorrect == 0
        assert stats.avoided == 0
        assert stats.taken_accuracy == 0.0
        # With no mispredictions to classify, accuracy is vacuously 100%.
        assert stats.misprediction_classification_accuracy == 100.0
        assert stats.correct_classification_accuracy == 100.0

    def test_address_stats_derived_counts(self):
        stats = AddressStats(executions=10, attempts=8, would_correct=5,
                             taken=6, taken_correct=4, allocations=1)
        assert stats.would_incorrect == 3
        assert stats.taken_incorrect == 2

    def test_aggregate_derived_counts(self):
        stats = PredictionStats(attempts=100, would_correct=80, taken=70,
                                taken_correct=65)
        assert stats.would_incorrect == 20
        assert stats.taken_incorrect == 5
        assert stats.avoided == 30
        assert stats.avoided_incorrect == 15
        assert stats.misprediction_classification_accuracy == pytest.approx(75.0)
        assert stats.correct_classification_accuracy == pytest.approx(
            100.0 * 65 / 80
        )


class TestProfileEdges:
    def test_accuracy_with_zero_attempts(self):
        profile = InstructionProfile(0)
        assert profile.accuracy == 0.0
        assert profile.stride_efficiency == 0.0

    def test_image_lookup_of_missing_address(self):
        image = ProfileImage("p")
        assert image.accuracy_of(42) == 0.0
        assert image.stride_efficiency_of(42) == 0.0

    def test_overall_accuracy_empty(self):
        image = ProfileImage("p")
        assert image.overall_accuracy() == 0.0


class TestExecutorBoundaries:
    def test_budget_boundary_exact(self):
        # Exactly enough budget: li + halt = 2 instructions.
        program = assemble(".text\n li r1, 1\n halt\n")
        result = run_program(program, max_instructions=2)
        assert result.halted
        with pytest.raises(InstructionBudgetExceeded):
            run_program(program, max_instructions=1)

    def test_jr_outside_code_raises(self):
        program = assemble(".text\n li r31, 999\n jr ra\n halt\n")
        with pytest.raises(ExecutionError):
            run_program(program)

    def test_empty_input_stream_ok_when_unused(self):
        program = assemble(".text\n halt\n")
        assert run_program(program, inputs=[]).halted

    def test_output_preserves_number_types(self):
        program = assemble(".text\n li r1, 3\n out r1\n fli r2, 2.5\n out r2\n halt\n")
        outputs = run_program(program).outputs
        assert outputs == [3, 2.5]
        assert isinstance(outputs[0], int)
        assert isinstance(outputs[1], float)


class TestAssemblerBoundaries:
    def test_name_requires_value(self):
        with pytest.raises(AssemblerError):
            assemble(".name\n.text\n halt\n")

    def test_org_requires_nonnegative_int(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.org -3\n.text\n halt\n")
        with pytest.raises(AssemblerError):
            assemble(".data\n.org 1.5\n.text\n halt\n")

    def test_unknown_dot_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus\n.text\n halt\n")

    def test_branch_to_label_at_end_of_code(self):
        # A label marking one-past-the-end must not silently misresolve.
        program = assemble(".text\n li r1, 1\n beqz r1, end\nend:\n halt\n")
        assert program[1].target == 2


class TestWorkloadValidation:
    def test_invalid_suite_rejected(self):
        with pytest.raises(ValueError):
            Workload(
                name="x",
                suite="neither",
                description="",
                source="void main() { }",
                make_inputs=lambda index, scale: [],
            )


class TestOpcodeSurface:
    def test_every_control_op_except_jr_requires_target(self):
        from repro.isa import Instruction, ProgramError, build_program

        for opcode in (Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP, Opcode.CALL):
            with pytest.raises(ProgramError):
                build_program([Instruction(opcode, srcs=(1,) if opcode.value.startswith("b") else ())])

    def test_jr_needs_no_target(self):
        from repro.isa import Instruction, build_program

        program = build_program([Instruction(Opcode.JR, srcs=(31,))])
        assert program[0].target is None
