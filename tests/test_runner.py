"""Tests for the parallel experiment engine (:mod:`repro.runner`).

Covers the three load-bearing guarantees:

* ``--jobs N`` is byte-for-byte identical to a serial run,
* an unchanged configuration hits the content-addressed cache,
* cache keys change with the program text, the inputs and the scale,
  and a corrupt cache entry is discarded and recomputed, never trusted.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.experiments import shared
from repro.experiments.context import ExperimentContext
from repro.experiments.runner import run_experiments
from repro.ilp import IlpConfig
from repro.runner import ArtifactCache, build_experiment_graph, keys
from repro.runner.executor import execute_graph, resolve_jobs
from repro.runner.faults import Fault, FaultPlan
from repro.runner.jobs import Job, JobGraph
from repro.runner.retry import RetryPolicy
from repro.telemetry import Telemetry, use_registry

THRESHOLDS = (90.0, 50.0)


def make_context(**overrides) -> ExperimentContext:
    options = dict(scale=0.02, training_runs=2)
    options.update(overrides)
    return ExperimentContext(**options)


class TestKeys:
    def test_deterministic(self):
        first = keys.profile_key("129.compress", 0, 0.02)
        second = keys.profile_key("129.compress", 0, 0.02)
        assert first == second

    def test_scale_changes_key(self):
        assert keys.profile_key("129.compress", 0, 0.02) != keys.profile_key(
            "129.compress", 0, 0.03
        )

    def test_input_set_changes_key(self):
        assert keys.profile_key("129.compress", 0, 0.02) != keys.profile_key(
            "129.compress", 1, 0.02
        )

    def test_program_text_changes_key(self, monkeypatch):
        before = keys.profile_key("129.compress", 0, 0.02)
        monkeypatch.setitem(keys._program_texts, "129.compress", "li r1, 0\nhalt")
        assert keys.profile_key("129.compress", 0, 0.02) != before

    def test_training_run_count_changes_merged_key(self):
        assert keys.merged_key("129.compress", 0.02, 2) != keys.merged_key(
            "129.compress", 0.02, 3
        )

    def test_ilp_key_default_config_matches_none(self):
        explicit = keys.ilp_key(
            "129.compress", 0.02, 2, THRESHOLDS, 50.0, 512, 2, IlpConfig()
        )
        implicit = keys.ilp_key(
            "129.compress", 0.02, 2, THRESHOLDS, 50.0, 512, 2, None
        )
        assert explicit == implicit

    def test_ilp_key_custom_config_changes_key(self):
        default = keys.ilp_key("129.compress", 0.02, 2, THRESHOLDS, 50.0, 512, 2)
        custom = keys.ilp_key(
            "129.compress", 0.02, 2, THRESHOLDS, 50.0, 512, 2,
            IlpConfig(window_size=16),
        )
        assert default != custom

    def test_ilp_memo_key_default_config_matches_none(self):
        assert shared.ilp_memo_key(
            "129.compress", None, 512, 2
        ) == shared.ilp_memo_key("129.compress", IlpConfig(), 512, 2)


class TestArtifactCache:
    KEY = "ab" + "0" * 62

    def test_roundtrip_and_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("profile", self.KEY, "payload\n", "profile")
        assert cache.load("profile", self.KEY, "profile") == "payload\n"
        assert (tmp_path / "profile" / "ab" / f"{self.KEY}.profile").is_file()

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactCache(tmp_path).load("profile", self.KEY, "profile") is None

    def test_discard(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("merged", self.KEY, "x", "profile")
        assert ("merged", self.KEY) in cache
        cache.discard("merged", self.KEY, "profile")
        assert ("merged", self.KEY) not in cache
        assert cache.load("merged", self.KEY, "profile") is None

    def test_store_overwrites_atomically(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("classify", self.KEY, "old")
        cache.store("classify", self.KEY, "new")
        assert cache.load("classify", self.KEY) == "new"
        assert len(list(cache.entries())) == 1

    def test_unreadable_entry_treated_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.store("profile", self.KEY, "ok", "profile")
        path.write_bytes(b"\xff\xfe garbage \xff")
        assert cache.load("profile", self.KEY, "profile") is None
        assert ("profile", self.KEY) not in cache


class TestGraph:
    def test_experiment_graph_shape(self):
        context = make_context()
        graph = build_experiment_graph(["fig-5.1"], context)
        kinds = {job.kind for job in graph.order()}
        assert {"compile", "profile", "annotate", "classify", "experiment"} <= kinds
        experiment = graph["experiment:fig-5.1"]
        dep_kinds = {graph[dep].kind for dep in experiment.deps}
        # fig-5.1 declares CELLS = ("classify",); the closure pulls in the
        # profile and annotate cells those simulations are built from.
        assert dep_kinds == {"profile", "annotate", "classify"}

    def test_order_respects_dependencies(self):
        context = make_context()
        graph = build_experiment_graph(["fig-2.3", "fig-5.1"], context)
        seen = set()
        for job in graph.order():
            assert all(dep in seen for dep in job.deps), job.job_id
            seen.add(job.job_id)

    def test_resolve_jobs(self):
        import os

        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) == (os.cpu_count() or 1)


EXPERIMENT = "fig-4.2"


def run_engine(jobs=1, cache_dir=None, **engine_options):
    context = make_context(cache_dir=cache_dir)
    graph = build_experiment_graph([EXPERIMENT], context)
    outcome = execute_graph(graph, context, jobs=jobs, **engine_options)
    return outcome, outcome.tables[EXPERIMENT].to_tsv()


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """One serial run with a fresh cache; the expensive shared baseline."""
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    outcome, tsv = run_engine(cache_dir=cache_dir)
    return cache_dir, outcome, tsv


class TestEngine:
    """End-to-end engine runs; tiny scale keeps each under ~10s."""

    def test_parallel_byte_identical_to_serial(self, warm_cache):
        _, _, serial = warm_cache
        _, pooled = run_engine(jobs=4)  # no cache: genuinely recomputed
        assert pooled == serial

    def test_cache_hit_on_unchanged_inputs(self, warm_cache):
        cache_dir, first_outcome, first = warm_cache
        assert first_outcome.cached_jobs == 0
        second_outcome, second = run_engine(cache_dir=cache_dir)
        assert second == first
        assert second_outcome.cached_jobs > 0
        # Every profile cell and the finished table come from the cache.
        cached_kinds = {r.kind for r in second_outcome.records if r.cached}
        assert "profile" in cached_kinds and "experiment" in cached_kinds

    def test_run_experiments_parallel_output_matches_serial(
        self, warm_cache, tmp_path
    ):
        cache_dir, _, _ = warm_cache
        run_experiments(
            [EXPERIMENT], make_context(cache_dir=cache_dir),
            stream=io.StringIO(), output_dir=tmp_path / "serial",
        )
        run_experiments(
            [EXPERIMENT], make_context(cache_dir=cache_dir),
            stream=io.StringIO(), output_dir=tmp_path / "pooled", jobs=2,
        )
        stem = EXPERIMENT.replace(".", "_")
        serial_tsv = (tmp_path / "serial" / f"{stem}.tsv").read_text()
        pooled_tsv = (tmp_path / "pooled" / f"{stem}.tsv").read_text()
        assert serial_tsv == pooled_tsv

    def test_differential_serial_parallel_faulty(self):
        """Serial, parallel, and fault-injected parallel runs agree.

        The three runs must produce byte-identical tables and identical
        job-outcome telemetry totals — the only counters allowed to
        differ are the recovery ones (``runner.retries`` etc.), which is
        exactly what "faults are invisible once recovered" means.
        """
        plan = FaultPlan(
            [
                Fault("transient", "profile:129.compress:0", 1),
                Fault("transient", "profile:107.mgrid:1", 1),
            ]
        )
        watched = (
            "machine.instructions",
            "profiling.records",
            "profiling.runs",
            "runner.jobs",
            "runner.jobs_cached",
        )
        totals, tsvs = [], []
        for jobs, fault_plan in ((1, None), (2, None), (2, plan)):
            registry = Telemetry()
            with use_registry(registry):
                outcome, tsv = run_engine(
                    jobs=jobs,
                    retry=RetryPolicy(max_attempts=3),
                    fault_plan=fault_plan,
                )
            assert outcome.report.ok, outcome.report.format()
            counters = registry.snapshot()["counters"]
            totals.append({name: counters.get(name, 0) for name in watched})
            tsvs.append(tsv)
        assert tsvs[0] == tsvs[1] == tsvs[2]
        assert totals[0] == totals[1] == totals[2]

    def test_queue_wait_bounded_by_wall_clock(self):
        """Regression: summed ``runner.queue_wait`` must stay below wall time.

        Dispatch latency is charged per job from the moment capacity
        frees up, not from when the job became ready — the old
        finish-time accounting re-counted every other job's compute time
        and summed to hundreds of seconds inside a 30-second run.
        """
        registry = Telemetry()
        started = time.perf_counter()
        with use_registry(registry):
            run_engine(jobs=2)
        wall = time.perf_counter() - started
        timers = registry.snapshot().get("timers", {})
        waited = timers.get("runner.queue_wait", {}).get("seconds", 0.0)
        assert waited <= wall

    def test_corrupt_single_entry_mid_suite_counted(self, warm_cache):
        """One corrupt profile entry: counted, discarded, recomputed.

        Unlike the clobber-everything test below, this models the
        realistic mid-suite case — a single torn write in an otherwise
        warm cache — and pins the ``runner.cache.corrupt`` telemetry.
        """
        cache_dir, _, first = warm_cache
        cache = ArtifactCache(cache_dir)
        victim = next(
            path for path in cache.entries() if path.parent.parent.name == "profile"
        )
        victim.write_text("not a profile image", encoding="utf-8")
        registry = Telemetry()
        with use_registry(registry):
            outcome, again = run_engine(cache_dir=cache_dir)
        assert again == first
        snapshot = registry.snapshot()
        assert snapshot["counters"]["runner.cache.corrupt"] == 1
        # The rest of the warm cache was still honored.
        assert outcome.cached_jobs > 0
        assert outcome.report.ok

    def test_corrupt_cache_entry_recovered(self, warm_cache):
        # Runs after the cache-hit test (definition order); clobbering the
        # shared cache here is safe because recovery recomputes everything.
        cache_dir, _, first = warm_cache
        cache = ArtifactCache(cache_dir)
        corrupted = 0
        for path in cache.entries():
            path.write_text("not a valid payload {", encoding="utf-8")
            corrupted += 1
        assert corrupted > 0
        outcome, again = run_engine(cache_dir=cache_dir)
        assert again == first
        # The corrupt table entry was discarded, not served.
        record = outcome.record_for(f"experiment:{EXPERIMENT}")
        assert record is not None and not record.cached


class TestDeadlockDiagnostic:
    """A malformed graph must fail with a diagnosis, not hang or baffle."""

    def test_cycle_names_unmet_deps(self):
        # A dependency cycle can't be built through JobGraph.add (it
        # validates deps), so poke the jobs table directly — exactly the
        # kind of malformed input the diagnostic exists for.
        graph = JobGraph()
        graph.jobs["profile:w:0"] = Job(
            "profile:w:0", "profile", "w", params=(0,), deps=("profile:w:1",)
        )
        graph.jobs["profile:w:1"] = Job(
            "profile:w:1", "profile", "w", params=(1,), deps=("profile:w:0",)
        )
        with pytest.raises(RuntimeError) as excinfo:
            execute_graph(graph, make_context())
        message = str(excinfo.value)
        assert "deadlock" in message
        assert "profile:w:0 (waiting on: profile:w:1)" in message
        assert "profile:w:1 (waiting on: profile:w:0)" in message
        assert "dependency cycle" in message
