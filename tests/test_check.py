"""Tests for the correctness tooling (:mod:`repro.check`).

The oracle is validated in both directions: a clean run over the fixed
repo passes every pair, and a seeded fault (the historical
``merge_profiles`` group-filtering bug, reintroduced via monkeypatch)
is detected with a named diverging field and a minimized reproducer.
"""

from __future__ import annotations

import pytest

import repro.check.oracle as oracle_module
from repro.check import generate_case, run_lint
from repro.check.cli import main as check_main
from repro.check.generator import FLOAT_REGS, INT_REGS
from repro.check.lint import Violation, lint_source, load_allowlist
from repro.check.oracle import (
    all_pairs,
    first_divergence,
    minimize_case,
    run_oracle,
)
from repro.isa import Opcode
from repro.machine import Executor
from repro.machine.errors import ExecutionError

BUDGET = 20_000


class TestGenerator:
    def test_deterministic(self):
        first = generate_case(41)
        second = generate_case(41)
        assert first.program.instructions == second.program.instructions
        assert first.program.data == second.program.data
        assert first.inputs == second.inputs

    def test_seeds_differ(self):
        assert (
            generate_case(1).program.instructions
            != generate_case(2).program.instructions
        )

    def test_every_seed_terminates_within_budget(self):
        for seed in range(40):
            case = generate_case(seed)
            executor = Executor(
                case.program, inputs=list(case.inputs), max_instructions=BUDGET
            )
            try:
                for _ in executor.run():
                    pass
            except ExecutionError:
                pass  # legitimate machine fault, compared across pairs

    def test_fault_mix(self):
        """Some seeds fault (error-timing equivalence needs them), most halt."""
        outcomes = {"clean": 0, "fault": 0}
        for seed in range(120):
            case = generate_case(seed)
            executor = Executor(
                case.program, inputs=list(case.inputs), max_instructions=BUDGET
            )
            try:
                for _ in executor.run():
                    pass
                outcomes["clean"] += 1
            except ExecutionError:
                outcomes["fault"] += 1
        assert outcomes["fault"] >= 5
        assert outcomes["clean"] >= 60

    def test_register_partition(self):
        """Int opcodes only touch int registers, FP opcodes FP registers."""
        int_pool = set(INT_REGS) | {12, 13, 15}
        float_pool = set(FLOAT_REGS)
        for seed in range(30):
            for instruction in generate_case(seed).program:
                op = instruction.opcode
                if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FLI,
                          Opcode.FLD, Opcode.CVTIF):
                    assert instruction.dest in float_pool
                elif op in (Opcode.ADD, Opcode.SUB, Opcode.DIV, Opcode.MOD,
                            Opcode.LD, Opcode.LI, Opcode.CVTFI):
                    assert instruction.dest in int_pool


class TestFirstDivergence:
    def test_equal(self):
        assert first_divergence({"a": [1, 2]}, {"a": [1, 2]}) is None

    def test_scalar_mismatch(self):
        path, fast, reference = first_divergence({"a": 1}, {"a": 2})
        assert path == "$.a" and fast == "1" and reference == "2"

    def test_first_list_index_reported(self):
        path, _, _ = first_divergence([1, 2, 3], [1, 9, 9])
        assert path == "$[1]"

    def test_length_mismatch_after_common_prefix(self):
        path, fast, reference = first_divergence([1, 2], [1, 2, 3])
        assert path == "$.length" and (fast, reference) == ("2", "3")

    def test_missing_key(self):
        path, fast, _ = first_divergence({}, {"k": 1})
        assert path == "$.k" and fast == "<missing>"

    def test_int_float_not_conflated(self):
        assert first_divergence(3, 3.0) is not None


class TestOracle:
    def test_clean_repo_passes_program_pairs(self):
        report = run_oracle(seeds=range(1, 4), budget=BUDGET,
                            pairs=[p.name for p in all_pairs() if p.uses_program])
        assert report.passed, report.format_text()

    def test_clean_repo_passes_runner_pairs(self):
        report = run_oracle(seeds=(), budget=BUDGET,
                            pairs=["runner-parallel", "runner-faulty"])
        assert report.passed, report.format_text()

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle pairs"):
            run_oracle(seeds=(1,), pairs=["no-such-pair"])

    def test_seeded_merge_fault_detected(self, monkeypatch):
        """Reverting the merge.py group fix must fail the oracle."""
        original = oracle_module.merge_profiles

        def buggy_merge(images, program_name="", run_label="merged",
                        require_common=False):
            merged = original(images, program_name=program_name,
                              run_label=run_label, require_common=require_common)
            if require_common:
                # The historical bug: groups accumulated unconditionally,
                # ignoring the common-address filter.
                merged.group_detail = {}
                for image in images:
                    for (category, phase), members in image.group_detail.items():
                        for address, counts in members.items():
                            slot = merged.group_slot(category, phase, address)
                            slot[0] += counts[0]
                            slot[1] += counts[1]
                            slot[2] += counts[2]
            return merged

        monkeypatch.setattr(oracle_module, "merge_profiles", buggy_merge)
        report = run_oracle(
            seeds=range(1997, 2001), budget=BUDGET, pairs=["profile-io-merge"]
        )
        assert not report.passed
        result = report.failures[0]
        assert "groups" in result.divergence.path
        assert result.divergence.seed is not None
        assert result.reproducer is not None
        assert "# diverged at:" in result.reproducer

    def test_minimizer_shrinks_to_predicate_core(self):
        case = generate_case(5)

        def still_diverges(trial):
            return any(
                instruction.opcode is Opcode.OUT for instruction in trial.program
            )

        minimized = minimize_case(case, still_diverges)
        non_nop = [
            instruction for instruction in minimized.program
            if instruction.opcode is not Opcode.NOP
        ]
        assert non_nop, "predicate core must survive"
        assert all(
            instruction.opcode is Opcode.OUT for instruction in non_nop
        )
        assert minimized.inputs == ()
        assert len(minimized.program) == len(case.program)  # addresses stable


DETERMINISTIC_PATH = "repro/machine/example.py"
OTHER_PATH = "repro/experiments/example.py"
RUNNER_PATH = "repro/runner/example.py"


class TestLintRules:
    def _rules(self, source, path):
        return [violation.rule for violation in lint_source(source, path)]

    def test_nondet_call_flagged_in_deterministic_module(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert self._rules(source, DETERMINISTIC_PATH) == ["nondet-call"]

    def test_nondet_call_allowed_outside_core(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert self._rules(source, OTHER_PATH) == []

    def test_perf_counter_exempt(self):
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert self._rules(source, DETERMINISTIC_PATH) == []

    def test_global_random_flagged_seeded_rng_allowed(self):
        flagged = "import random\n\ndef f():\n    return random.randint(0, 9)\n"
        assert self._rules(flagged, DETERMINISTIC_PATH) == ["nondet-call"]
        seeded = "import random\n\ndef f(seed):\n    return random.Random(seed)\n"
        assert self._rules(seeded, DETERMINISTIC_PATH) == []

    def test_set_iteration_flagged(self):
        source = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        assert self._rules(source, DETERMINISTIC_PATH) == ["set-iteration"]

    def test_sorted_set_iteration_allowed(self):
        source = "def f(xs):\n    for x in sorted(set(xs)):\n        print(x)\n"
        assert self._rules(source, DETERMINISTIC_PATH) == []

    def test_set_comprehension_source_flagged(self):
        source = "def f(xs):\n    return [x for x in {x for x in xs}]\n"
        assert self._rules(source, DETERMINISTIC_PATH) == ["set-iteration"]

    def test_unknown_metric_flagged(self):
        source = "def f(registry):\n    registry.counter('bogus.metric').add(1)\n"
        assert self._rules(source, OTHER_PATH) == ["metric-name"]

    def test_known_metric_allowed(self):
        source = "def f(registry):\n    registry.counter('machine.run').add(1)\n"
        assert self._rules(source, OTHER_PATH) == []

    def test_dynamic_metric_prefix(self):
        known = (
            "def f(registry, kind):\n"
            "    registry.timer(f'runner.job.{kind}').add(1.0)\n"
        )
        assert self._rules(known, OTHER_PATH) == []
        unknown = (
            "def f(registry, kind):\n"
            "    registry.timer(f'bogus.{kind}').add(1.0)\n"
        )
        assert self._rules(unknown, OTHER_PATH) == ["metric-name"]

    def test_lambda_to_submit_flagged_in_runner(self):
        source = "def f(pool):\n    return pool.submit(lambda: 1)\n"
        assert self._rules(source, RUNNER_PATH) == ["pickle-boundary"]
        assert self._rules(source, OTHER_PATH) == []

    def test_nested_function_to_submit_flagged(self):
        source = (
            "def f(pool):\n"
            "    def job():\n"
            "        return 1\n"
            "    return pool.submit(job)\n"
        )
        assert self._rules(source, RUNNER_PATH) == ["pickle-boundary"]

    def test_module_level_function_to_submit_allowed(self):
        source = (
            "def job():\n"
            "    return 1\n"
            "def f(pool):\n"
            "    return pool.submit(job)\n"
        )
        assert self._rules(source, RUNNER_PATH) == []

    def test_violation_key_is_line_stable(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        shifted = "import time\n\n\n\ndef f():\n    return time.time()\n"
        [first] = lint_source(source, DETERMINISTIC_PATH)
        [second] = lint_source(shifted, DETERMINISTIC_PATH)
        assert first.key == second.key
        assert first.line != second.line

    def test_allowlist_suppresses_by_key(self, tmp_path):
        violation = Violation(
            "nondet-call", DETERMINISTIC_PATH, 4, "time.time", "msg"
        )
        allowfile = tmp_path / "allow"
        allowfile.write_text(f"# comment\n{violation.key}\n", encoding="utf-8")
        assert violation.key in load_allowlist(allowfile)

    def test_repo_is_lint_clean(self):
        assert run_lint() == []


class TestCheckCli:
    def test_list_pairs(self, capsys):
        assert check_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "batch-vs-record" in out and "runner-faulty" in out

    def test_lint_only(self, capsys):
        assert check_main(["--no-oracle"]) == 0
        assert "lint: PASS" in capsys.readouterr().out

    def test_oracle_subset(self, capsys, tmp_path):
        code = check_main([
            "--no-lint", "--pairs", "batch-vs-record",
            "--seed", "3", "--programs", "2",
            "--artifact-dir", str(tmp_path),
        ])
        assert code == 0
        assert "oracle: PASS" in capsys.readouterr().out

    def test_top_level_cli_wires_check(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["check", "--list"]) == 0
        assert "profile-io-merge" in capsys.readouterr().out
