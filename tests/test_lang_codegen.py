"""Behavioral tests: compiled mini-C programs must compute C semantics."""

from __future__ import annotations

import pytest

from repro.lang import CompileError, compile_source
from repro.machine import run_program


def run_minic(source: str, inputs=()):
    return run_program(compile_source(source), inputs=inputs).outputs


class TestExpressions:
    def test_arithmetic_precedence(self):
        assert run_minic("void main() { out(2 + 3 * 4 - 1); }") == [13]

    def test_parentheses(self):
        assert run_minic("void main() { out((2 + 3) * 4); }") == [20]

    def test_unary_minus_and_not(self):
        assert run_minic("void main() { out(-(3 - 5)); out(!0); out(!7); }") == [
            2, 1, 0,
        ]

    def test_comparisons(self):
        source = """
        void main() {
            out(3 < 4); out(4 < 3); out(3 <= 3); out(4 > 3);
            out(3 >= 4); out(3 == 3); out(3 != 3);
        }
        """
        assert run_minic(source) == [1, 0, 1, 1, 0, 1, 0]

    def test_bitwise_and_shifts(self):
        source = """
        void main() {
            out(12 & 10); out(12 | 3); out(12 ^ 10);
            out(1 << 5); out(-32 >> 3);
        }
        """
        assert run_minic(source) == [8, 15, 6, 32, -4]

    def test_short_circuit_and_skips_rhs(self):
        source = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        void main() {
            calls = 0;
            out(0 && bump());
            out(calls);
            out(1 && bump());
            out(calls);
        }
        """
        assert run_minic(source) == [0, 0, 1, 1]

    def test_short_circuit_or_skips_rhs(self):
        source = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        void main() {
            calls = 0;
            out(1 || bump());
            out(calls);
            out(0 || bump());
            out(calls);
        }
        """
        assert run_minic(source) == [1, 0, 1, 1]

    def test_logical_results_are_normalized(self):
        assert run_minic("void main() { out(5 && 7); out(0 || 9); }") == [1, 1]

    def test_division_truncates_like_c(self):
        source = """
        void main() {
            out(7 / 2); out(-7 / 2); out(7 / -2); out(-7 / -2);
            out(7 % 3); out(-7 % 3); out(7 % -3);
        }
        """
        assert run_minic(source) == [3, -3, -3, 3, 1, -1, 1]


class TestVariablesAndArrays:
    def test_global_initializers(self):
        assert run_minic("int g = 42; void main() { out(g); }") == [42]

    def test_array_initializer_and_indexing(self):
        source = """
        int t[5] = {10, 20, 30, 40, 50};
        void main() { out(t[0] + t[4]); t[2] = 99; out(t[2]); }
        """
        assert run_minic(source) == [60, 99]

    def test_local_initializer(self):
        assert run_minic("void main() { int x = 5; out(x * x); }") == [25]

    def test_computed_index(self):
        source = """
        int t[8];
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { t[i] = i * i; }
            out(t[3 + 2]);
        }
        """
        assert run_minic(source) == [25]


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
        int grade(int score) {
            if (score >= 90) { return 4; }
            else if (score >= 80) { return 3; }
            else if (score >= 70) { return 2; }
            else { return 0; }
        }
        void main() { out(grade(95)); out(grade(85)); out(grade(10)); }
        """
        assert run_minic(source) == [4, 3, 0]

    def test_while_with_break_continue(self):
        source = """
        void main() {
            int i; int total;
            i = 0; total = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            out(total);   // 1+3+5+7+9
        }
        """
        assert run_minic(source) == [25]

    def test_nested_loops_with_break(self):
        source = """
        void main() {
            int i; int j; int count;
            count = 0;
            for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 5; j = j + 1) {
                    if (j > i) { break; }
                    count = count + 1;
                }
            }
            out(count);   // 1+2+3+4+5
        }
        """
        assert run_minic(source) == [15]

    def test_for_continue_still_steps(self):
        source = """
        void main() {
            int i; int total;
            total = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 3 != 0) { continue; }
                total = total + i;
            }
            out(total);   // 0+3+6+9
        }
        """
        assert run_minic(source) == [18]


class TestFunctions:
    def test_recursion(self):
        source = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        void main() { out(fact(10)); }
        """
        assert run_minic(source) == [3628800]

    def test_mutual_recursion(self):
        source = """
        int is_even(int n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        void main() { out(is_even(10)); out(is_odd(10)); }
        """
        assert run_minic(source) == [1, 0]

    def test_many_arguments(self):
        source = """
        int sum6(int a, int b, int c, int d, int e, int f) {
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
        }
        void main() { out(sum6(1, 2, 3, 4, 5, 6)); }
        """
        assert run_minic(source) == [1 + 4 + 9 + 16 + 25 + 36]

    def test_call_in_expression_preserves_live_temps(self):
        # The partially evaluated left operand must survive the call.
        source = """
        int g;
        int bump() { g = g + 100; return g; }
        void main() {
            g = 0;
            out(1000 + bump());
            out((2000 + g) - bump());
        }
        """
        assert run_minic(source) == [1100, 1900]

    def test_nested_calls_in_arguments(self):
        source = """
        int double_(int x) { return x * 2; }
        int add(int a, int b) { return a + b; }
        void main() { out(add(double_(3), double_(add(1, 1)))); }
        """
        assert run_minic(source) == [10]

    def test_float_function(self):
        source = """
        float mean(float a, float b) { return (a + b) / 2.0; }
        void main() { out(mean(1.0, 4.0)); }
        """
        assert run_minic(source) == [2.5]


class TestFloatSemantics:
    def test_mixed_arithmetic_promotes(self):
        assert run_minic("void main() { out(1 + 0.5); }") == [1.5]

    def test_assignment_truncates_to_int(self):
        assert run_minic("void main() { int x; x = 7.9; out(x); }") == [7]

    def test_explicit_casts(self):
        assert run_minic(
            "void main() { out((float)3); out((int)3.99); out((int)-3.99); }"
        ) == [3.0, 3, -3]

    def test_float_compare_feeds_int_condition(self):
        source = """
        void main() {
            float f = 2.5;
            if (f > 2.0) { out(1); } else { out(0); }
        }
        """
        assert run_minic(source) == [1]


class TestEnvironmentBuiltins:
    def test_in_and_out(self):
        assert run_minic(
            "void main() { out(in() + in()); }", inputs=[3, 4]
        ) == [7]

    def test_fin(self):
        assert run_minic("void main() { out(fin() * 2.0); }", inputs=[1.25]) == [2.5]

    def test_phase_requires_constant(self):
        with pytest.raises(CompileError):
            compile_source("void main() { phase(in()); }")


class TestOptimizerEquivalence:
    SOURCES = [
        "void main() { out(2 * 3 + 4 * (1 + 1)); }",
        """
        int t[4] = {1, 2, 3, 4};
        int f(int x) { return x * 1 + 0; }
        void main() {
            int i;
            for (i = 0; i < 4; i = i + 1) { out(f(t[i]) + 2 - 2); }
        }
        """,
        """
        void main() {
            int x = 10;
            if (1 == 1 && x > 5) { out(x / 1); } else { out(0); }
        }
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_optimized_matches_unoptimized(self, source):
        optimized = run_program(compile_source(source, optimize=True)).outputs
        plain = run_program(compile_source(source, optimize=False)).outputs
        assert optimized == plain

    def test_optimizer_shrinks_code(self):
        source = "void main() { out(1 + 2 + 3 + 4); }"
        optimized = compile_source(source, optimize=True)
        plain = compile_source(source, optimize=False)
        assert len(optimized) < len(plain)
