"""Tests for the pinned performance suite (``python -m repro bench``)."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.bench import (
    FULL,
    REQUIRED_METRICS,
    SCHEMA_VERSION,
    SMOKE,
    BenchConfig,
    BenchSchemaError,
    bench_executor,
    bench_predictor,
    validate_payload,
)

#: A sub-smoke configuration so the test suite stays quick.
TINY = BenchConfig(
    executor_iterations=500,
    predictor_ops=2_000,
    suite_experiment="fig-5.1",
    suite_scale=0.01,
    suite_training_runs=1,
)


def minimal_payload() -> dict:
    """The smallest payload :func:`validate_payload` accepts."""
    metrics = {
        section: {key: 1.0 for key in keys}
        for section, keys in REQUIRED_METRICS.items()
    }
    metrics["suite"]["cache"] = {"profile": {"hits": 1, "misses": 0, "hit_rate": 100.0}}
    return {
        "schema": SCHEMA_VERSION,
        "revision": "abc1234",
        "created": "2026-01-01T00:00:00+00:00",
        "python": "3.12.0",
        "platform": "test",
        "smoke": True,
        "config": {},
        "metrics": metrics,
        "telemetry": {},
    }


class TestSchema:
    def test_minimal_payload_validates(self):
        validate_payload(minimal_payload())

    def test_wrong_schema_version_rejected(self):
        payload = minimal_payload()
        payload["schema"] = "repro-bench/0"
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_payload(payload)

    def test_missing_section_rejected(self):
        payload = minimal_payload()
        del payload["metrics"]["predictor"]
        with pytest.raises(BenchSchemaError, match="predictor"):
            validate_payload(payload)

    def test_missing_metric_key_rejected(self):
        payload = minimal_payload()
        del payload["metrics"]["executor"]["mips"]
        with pytest.raises(BenchSchemaError, match="mips"):
            validate_payload(payload)

    def test_cache_entries_need_hit_rate(self):
        payload = minimal_payload()
        del payload["metrics"]["suite"]["cache"]["profile"]["hit_rate"]
        with pytest.raises(BenchSchemaError, match="hit_rate"):
            validate_payload(payload)

    def test_all_problems_reported_together(self):
        payload = minimal_payload()
        payload["schema"] = "nope"
        del payload["revision"]
        del payload["metrics"]["suite"]
        with pytest.raises(BenchSchemaError) as excinfo:
            validate_payload(payload)
        message = str(excinfo.value)
        assert "schema" in message and "revision" in message and "suite" in message

    def test_presets_are_pinned(self):
        # The trajectory only means something if the knobs stay fixed;
        # change these values deliberately, alongside a schema bump note.
        assert FULL.executor_iterations == 50_000
        assert FULL.predictor_ops == 200_000
        assert FULL.suite_experiment == "fig-5.1"
        assert SMOKE.suite_experiment == FULL.suite_experiment
        assert SMOKE.executor_iterations < FULL.executor_iterations


class TestSections:
    def test_bench_executor_counts_loop(self):
        metrics = bench_executor(200)
        # 2 setup + 7 per iteration + out + halt, as pinned in the asm.
        assert metrics["instructions"] == 2 + 200 * 7 + 2
        assert metrics["seconds"] > 0.0
        assert metrics["mips"] > 0.0

    def test_bench_predictor_exercises_replacement(self):
        metrics = bench_predictor(4_000)
        assert metrics["ops"] == 4_000
        assert 0.0 <= metrics["hit_rate"] <= 100.0
        # The stream cycles 1024 addresses through 512 entries, so the
        # table must evict.
        assert metrics["evictions"] > 0
        assert metrics["ops_per_sec"] > 0.0


@pytest.mark.slow
class TestRunBench:
    def test_run_bench_writes_valid_round_tripping_json(self, tmp_path):
        from repro.telemetry.bench import run_bench

        output = tmp_path / "bench.json"
        stream = io.StringIO()
        payload = run_bench(
            smoke=True, output=str(output), config=TINY, stream=stream
        )
        validate_payload(payload)

        on_disk = json.loads(output.read_text(encoding="utf-8"))
        validate_payload(on_disk)
        assert on_disk["schema"] == SCHEMA_VERSION
        assert on_disk["metrics"]["executor"]["instructions"] == payload[
            "metrics"
        ]["executor"]["instructions"]

        suite = on_disk["metrics"]["suite"]
        assert suite["experiment"] == "fig-5.1"
        assert suite["cold_seconds"] > 0.0
        assert suite["warm_seconds"] > 0.0
        assert suite["simulated_mips"] > 0.0
        # The warm pass must actually hit the cache seeded by the cold pass.
        assert any(entry["hits"] > 0 for entry in suite["cache"].values())

        summary = stream.getvalue()
        assert "repro bench" in summary
        assert "fig-5.1" in summary
        assert str(output) in summary
