"""Sharded multi-process capture against serial capture."""

from __future__ import annotations

from pathlib import Path

from repro.check.generator import generate_case
from repro.machine import capture_sharded, parallel_runs


def _fingerprint(directory: Path):
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(directory.rglob("*"))
        if path.is_file()
    }


def test_sharded_store_is_byte_identical_to_serial(tmp_path):
    case = generate_case(42)
    input_sets = [
        list(case.inputs),
        list(reversed(case.inputs)),
        [value + 1 for value in case.inputs],
    ]
    serial_dir = tmp_path / "serial"
    sharded_dir = tmp_path / "sharded"
    serial = capture_sharded(
        case.program, input_sets, directory=serial_dir, jobs=1,
        max_instructions=5_000,
    )
    sharded = capture_sharded(
        case.program, input_sets, directory=sharded_dir, jobs=2,
        max_instructions=5_000,
    )
    assert _fingerprint(serial_dir) == _fingerprint(sharded_dir)
    assert [
        (result.key, result.records, result.error) for result in serial.results
    ] == [
        (result.key, result.records, result.error) for result in sharded.results
    ]
    assert sharded.jobs == 2 and serial.jobs == 1


def test_capture_sharded_is_idempotent(tmp_path):
    case = generate_case(43)
    first = capture_sharded(
        case.program, [list(case.inputs)], directory=tmp_path, jobs=1,
        max_instructions=5_000,
    )
    before = _fingerprint(tmp_path)
    second = capture_sharded(
        case.program, [list(case.inputs)], directory=tmp_path, jobs=1,
        max_instructions=5_000,
    )
    assert _fingerprint(tmp_path) == before
    assert first.results[0].records == second.results[0].records


def test_parallel_runs_match_serial_outcomes():
    cases = []
    for seed in (1, 2, 3, 4):
        case = generate_case(seed)
        cases.append((case.program, list(case.inputs)))
    serial = parallel_runs(cases, jobs=1, max_instructions=5_000)
    parallel = parallel_runs(cases, jobs=2, max_instructions=5_000)
    assert serial == parallel
    assert len(serial) == len(cases)
