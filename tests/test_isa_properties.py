"""Property-based tests for the ISA layer (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    Directive,
    Instruction,
    Opcode,
    assemble,
    build_program,
    disassemble,
)
from repro.isa.formats import FLOAT_IMMEDIATE, FORMATS

_REGISTERS = st.integers(min_value=0, max_value=31)
_INT_IMMEDIATES = st.integers(min_value=-(2**31), max_value=2**31)
_FLOAT_IMMEDIATES = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e9, max_value=1e9
)


@st.composite
def instructions(draw, code_size: int = 8):
    """A random well-formed instruction for a program of ``code_size``."""
    opcode = draw(st.sampled_from(list(Opcode)))
    signature = FORMATS[opcode]
    dest = None
    srcs = []
    imm = None
    target = None
    for kind in signature:
        if kind == "d":
            dest = draw(_REGISTERS)
        elif kind == "s":
            srcs.append(draw(_REGISTERS))
        elif kind == "i":
            if opcode in FLOAT_IMMEDIATE:
                imm = draw(_FLOAT_IMMEDIATES)
            else:
                imm = draw(_INT_IMMEDIATES)
        else:
            target = draw(st.integers(min_value=0, max_value=code_size - 1))
    directive = None
    if opcode.is_prediction_candidate:
        directive = draw(st.sampled_from([None, Directive.STRIDE, Directive.LAST_VALUE]))
    return Instruction(
        opcode=opcode,
        dest=dest,
        srcs=tuple(srcs),
        imm=imm,
        target=target,
        directive=directive,
    )


@st.composite
def programs(draw):
    size = draw(st.integers(min_value=1, max_value=12))
    body = [draw(instructions(code_size=size)) for _ in range(size)]
    data_addresses = draw(
        st.lists(st.integers(min_value=0, max_value=50), unique=True, max_size=6)
    )
    data = {
        address: draw(st.one_of(_INT_IMMEDIATES, _FLOAT_IMMEDIATES))
        for address in data_addresses
    }
    return build_program(body, data=data, name="prop")


@settings(max_examples=200, deadline=None)
@given(programs())
def test_disassemble_assemble_roundtrip(program):
    """assemble(disassemble(p)) reproduces instructions and data exactly."""
    text = disassemble(program)
    again = assemble(text)
    assert again.instructions == program.instructions
    assert dict(again.data) == dict(program.data)


@settings(max_examples=200, deadline=None)
@given(instructions())
def test_render_is_parseable_fragment(instruction):
    """Instruction.render() is stable and non-empty for all instructions."""
    text = instruction.render()
    assert text.strip()
    assert text.split()[0].split(".")[0] == instruction.opcode.value


@settings(max_examples=100, deadline=None)
@given(programs())
def test_strip_directives_idempotent(program):
    stripped = program.strip_directives()
    assert stripped.directives() == {}
    assert stripped.strip_directives().instructions == stripped.instructions
