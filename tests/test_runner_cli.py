"""Tests for the experiment runner CLI and registry."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiments
from repro.runner.faults import Fault, FaultPlan


class TestRegistry:
    def test_all_paper_results_registered(self):
        expected = {
            "table-2.1", "fig-2.2", "fig-2.3",
            "fig-4.1", "fig-4.2", "fig-4.3",
            "fig-5.1", "fig-5.2", "table-5.1",
            "fig-5.3", "fig-5.4", "table-5.2",
        }
        assert expected <= set(EXPERIMENTS)

    def test_ablations_registered(self):
        expected = {
            "ablation-hybrid", "ablation-table-geometry",
            "ablation-fsm-bits", "ablation-stride-threshold",
            "ablation-predictors", "extension-critical-path",
            "characterization",
        }
        assert expected <= set(EXPERIMENTS)

    def test_ids_match_modules(self):
        for identifier, run in EXPERIMENTS.items():
            assert callable(run), identifier


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table-5.2" in out

    def test_unknown_experiment_rejected(self, tiny_context):
        with pytest.raises(SystemExit):
            run_experiments(["no-such-thing"], tiny_context)

    def test_run_single_cheap_experiment(self, tiny_context, capsys):
        tables = run_experiments(["fig-4.2"], tiny_context)
        assert len(tables) == 1
        out = capsys.readouterr().out
        assert "fig-4.2" in out and "finished in" in out

class TestDegradedRun:
    """A run that exhausts retries exits 1 with a report, not a traceback."""

    PLAN = FaultPlan(
        [
            Fault("transient", "experiment:fig-4.2", 1),
            Fault("transient", "experiment:fig-4.2", 2),
        ]
    )

    def test_invalid_fault_plan_rejected_cleanly(self, capsys):
        code = main(["fig-4.2", "--fault-plan", "no-such-plan", "--quiet"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --fault-plan" in err and "ci-smoke" in err
        assert "Traceback" not in err

    def test_cli_exits_nonzero_with_report(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        report_path = tmp_path / "report.json"
        code = repro_main(
            [
                "experiments",
                "fig-4.2",
                "--scale",
                "0.02",
                "--training-runs",
                "2",
                "--no-cache",
                "--retries",
                "1",
                "--quiet",
                "--fault-plan",
                self.PLAN.to_json(),
                "--report-json",
                str(report_path),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        # The structured report is the primary output of a degraded run.
        assert "run report:" in captured.err
        assert "experiment:fig-4.2" in captured.err
        assert "run failed: 1 job(s) failed" in captured.err
        assert "Traceback" not in captured.err and "Traceback" not in captured.out
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro-run/1"
        assert payload["counts"]["failed"] == 1
        failed = [
            entry for entry in payload["jobs"] if entry["status"] == "failed"
        ]
        assert [entry["job_id"] for entry in failed] == ["experiment:fig-4.2"]
        assert payload["retries"] == 1


class TestReport:
    def make_results(self, tmp_path):
        from repro.experiments import ExperimentTable

        table = ExperimentTable(
            "fig-9.9", "Synthetic result", headers=["benchmark", "value"],
            notes=["provenance"],
        )
        table.add_row("w1", 1.5)
        (tmp_path / "fig-9_9.tsv").write_text(table.to_tsv(), encoding="utf-8")
        return tmp_path

    def test_load_saved_tables(self, tmp_path):
        from repro.experiments.report import load_saved_tables

        results = self.make_results(tmp_path)
        tables = load_saved_tables(results)
        assert "fig-9.9" in tables
        assert tables["fig-9.9"].rows == [["w1", 1.5]]

    def test_build_markdown_report(self, tmp_path):
        from repro.experiments.report import build_markdown_report

        results = self.make_results(tmp_path)
        report = build_markdown_report(results)
        assert "## fig-9.9 — Synthetic result" in report
        assert "| w1 | 1.5 |" in report
        assert "*provenance*" in report

    def test_empty_dir_rejected(self, tmp_path):
        from repro.experiments.report import build_markdown_report

        with pytest.raises(FileNotFoundError):
            build_markdown_report(tmp_path)

    def test_report_cli(self, tmp_path, capsys):
        results = self.make_results(tmp_path)
        assert main(["report", "--output-dir", str(results)]) == 0
        assert "Synthetic result" in capsys.readouterr().out

    def test_report_cli_requires_output_dir(self):
        with pytest.raises(SystemExit):
            main(["report"])
