"""Property tests for the profile-image format and merge algebra.

The v1 text format must be a *lossless* encoding — instructions AND the
per-address group detail — and ``merge_profiles`` must be associative
and commutative on counts (labels aside), in both ``require_common``
modes.  Both properties back the save→load→merge leg of the
differential oracle (:mod:`repro.check.oracle`).
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Category
from repro.profiling import merge_profiles
from repro.profiling.collector import InstructionProfile, ProfileImage
from repro.profiling.image_io import (
    ProfileFormatError,
    dump_profile,
    dumps_profile,
    load_profile,
    loads_profile,
)

_CATEGORIES = (Category.INT_ALU, Category.FP_ALU, Category.INT_LOAD, Category.FP_LOAD)


@st.composite
def counts(draw):
    """(executions, attempts, correct, nonzero) with the format's ordering."""
    executions = draw(st.integers(min_value=0, max_value=10_000))
    attempts = draw(st.integers(min_value=0, max_value=executions))
    correct = draw(st.integers(min_value=0, max_value=attempts))
    nonzero = draw(st.integers(min_value=0, max_value=correct))
    return executions, attempts, correct, nonzero


@st.composite
def profile_images(draw):
    image = ProfileImage(
        draw(st.text(alphabet="abc129.gco-", min_size=0, max_size=12)),
        run_label=draw(st.text(alphabet="train-0123", min_size=0, max_size=8)),
    )
    addresses = draw(
        st.lists(st.integers(min_value=0, max_value=500), max_size=12, unique=True)
    )
    for address in addresses:
        executions, attempts, correct, nonzero = draw(counts())
        image.instructions[address] = InstructionProfile(
            address=address,
            executions=executions,
            attempts=attempts,
            correct=correct,
            nonzero_stride_correct=nonzero,
        )
    # Group detail references a subset of the instruction addresses,
    # the way real collection populates it.
    for address in addresses:
        if draw(st.booleans()):
            category = draw(st.sampled_from(_CATEGORIES))
            phase = draw(st.integers(min_value=0, max_value=2))
            executions, attempts, correct, _ = draw(counts())
            slot = image.group_slot(category, phase, address)
            slot[0] += executions
            slot[1] += attempts
            slot[2] += correct
    return image


def canonical_counts(image: ProfileImage):
    """Counts only — the part of a merge that is label-independent."""
    return (
        {
            address: (p.executions, p.attempts, p.correct, p.nonzero_stride_correct)
            for address, p in image.instructions.items()
        },
        {
            (category, phase, address): tuple(slot)
            for (category, phase), members in image.group_detail.items()
            for address, slot in members.items()
        },
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(profile_images())
    def test_loads_dumps_is_identity(self, image):
        assert loads_profile(dumps_profile(image)) == image

    @settings(max_examples=100, deadline=None)
    @given(profile_images())
    def test_dump_is_canonical(self, image):
        """Same image always serializes to the same bytes."""
        assert dumps_profile(image) == dumps_profile(
            loads_profile(dumps_profile(image))
        )

    @settings(max_examples=50, deadline=None)
    @given(profile_images())
    def test_group_rows_are_comments(self, image):
        """v1 back-compat: readers that predate group rows skip # lines."""
        for line in dumps_profile(image).splitlines():
            if "group:" in line:
                assert line.startswith("#")

    def test_image_without_groups_round_trips(self):
        image = ProfileImage("p", run_label="r")
        image.instructions[3] = InstructionProfile(3, 10, 9, 8, 7)
        assert loads_profile(dumps_profile(image)) == image
        assert "group:" not in dumps_profile(image)


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(profile_images(), profile_images())
    def test_commutative_on_counts(self, first, second):
        for require_common in (False, True):
            forward = merge_profiles([first, second], require_common=require_common)
            backward = merge_profiles([second, first], require_common=require_common)
            assert canonical_counts(forward) == canonical_counts(backward)

    @settings(max_examples=100, deadline=None)
    @given(profile_images(), profile_images(), profile_images())
    def test_associative_on_counts(self, first, second, third):
        for require_common in (False, True):
            left = merge_profiles(
                [
                    merge_profiles([first, second], require_common=require_common),
                    third,
                ],
                require_common=require_common,
            )
            right = merge_profiles(
                [
                    first,
                    merge_profiles([second, third], require_common=require_common),
                ],
                require_common=require_common,
            )
            assert canonical_counts(left) == canonical_counts(right)

    @settings(max_examples=100, deadline=None)
    @given(profile_images(), profile_images())
    def test_merge_commutes_with_serialization(self, first, second):
        """The oracle's save→load→merge leg, as a property."""
        for require_common in (False, True):
            direct = merge_profiles([first, second], require_common=require_common)
            via_disk = merge_profiles(
                [
                    loads_profile(dumps_profile(first)),
                    loads_profile(dumps_profile(second)),
                ],
                require_common=require_common,
            )
            assert canonical_counts(direct) == canonical_counts(via_disk)


class TestRequireCommonGroups:
    def _image(self, name, addresses):
        image = ProfileImage(name, run_label=name)
        for address in addresses:
            image.instructions[address] = InstructionProfile(address, 4, 3, 2, 1)
            slot = image.group_slot(Category.INT_ALU, 1, address)
            slot[0] += 4
            slot[1] += 3
            slot[2] += 2
        return image

    def test_groups_filtered_to_common_addresses(self):
        """Regression: group counts must honour the common-address filter."""
        first = self._image("a", [1, 2, 3])
        second = self._image("b", [2, 3, 4])
        merged = merge_profiles([first, second], require_common=True)
        assert sorted(merged.instructions) == [2, 3]
        members = merged.group_detail[(Category.INT_ALU, 1)]
        assert sorted(members) == [2, 3]
        assert members[2] == [8, 6, 4]
        # The aggregate view sums only the surviving members.
        stats = merged.groups[(Category.INT_ALU, 1)]
        assert (stats.executions, stats.attempts, stats.correct) == (16, 12, 8)

    def test_without_require_common_groups_keep_everything(self):
        first = self._image("a", [1, 2])
        second = self._image("b", [2, 3])
        merged = merge_profiles([first, second])
        members = merged.group_detail[(Category.INT_ALU, 1)]
        assert sorted(members) == [1, 2, 3]


class TestFormatErrors:
    def _text_with_extra(self, extra_line):
        image = ProfileImage("p", run_label="r")
        image.instructions[7] = InstructionProfile(7, 10, 9, 8, 7)
        slot = image.group_slot(Category.INT_ALU, 1, 7)
        slot[0] += 10
        slot[1] += 9
        slot[2] += 8
        return dumps_profile(image) + extra_line + "\n"

    def test_duplicate_instruction_row_rejected(self):
        text = self._text_with_extra("7 1 1 1 1")
        with pytest.raises(ProfileFormatError, match=r"line \d+: duplicate row for address 7"):
            loads_profile(text)

    def test_duplicate_group_row_rejected(self):
        text = self._text_with_extra("# group: int_alu 1 7 1 1 1")
        with pytest.raises(
            ProfileFormatError,
            match=r"line \d+: duplicate group row for int_alu phase 1 address 7",
        ):
            loads_profile(text)

    def test_group_row_field_count_checked(self):
        text = self._text_with_extra("# group: int_alu 1 9 1 1")
        with pytest.raises(ProfileFormatError, match="expects 6 fields"):
            loads_profile(text)

    def test_group_row_unknown_category_rejected(self):
        text = self._text_with_extra("# group: warp_core 1 9 1 1 1")
        with pytest.raises(ProfileFormatError, match="unknown group category"):
            loads_profile(text)

    def test_group_row_inconsistent_counts_rejected(self):
        text = self._text_with_extra("# group: int_alu 1 9 1 2 3")
        with pytest.raises(ProfileFormatError, match="inconsistent group counts"):
            loads_profile(text)

    def test_instruction_row_inconsistent_counts_name_line(self):
        text = "\n".join(
            ["# repro-profile-image v1", "# program: p", "# run: r", "3 1 2 3 4", ""]
        )
        with pytest.raises(ProfileFormatError, match="line 4"):
            loads_profile(text)

    def test_dump_load_stream_symmetry(self):
        image = ProfileImage("p")
        image.instructions[1] = InstructionProfile(1, 2, 2, 1, 0)
        buffer = io.StringIO()
        dump_profile(image, buffer)
        buffer.seek(0)
        assert load_profile(buffer) == image
