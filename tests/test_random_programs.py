"""Property tests over randomly generated mini-C programs.

A hypothesis strategy builds small, always-terminating mini-C programs
(bounded for-loops, guarded division); every generated program must

* compile with and without optimization to the *same observable outputs*,
* survive the assembler round-trip with identical behaviour,
* produce a directive-tagged variant that behaves identically.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotate import AnnotationPolicy, annotate_program
from repro.isa import assemble, disassemble
from repro.lang import compile_source
from repro.machine import run_program
from repro.profiling import collect_profile

_SCALARS = ["a", "b", "c"]
_ARRAY = "buf"
_ARRAY_SIZE = 8


@st.composite
def expressions(draw, depth: int = 0) -> str:
    """An int-valued expression over the declared scalars and array."""
    choices = ["literal", "scalar", "element"]
    if depth < 3:
        choices += ["binary", "binary", "unary"]
    kind = draw(st.sampled_from(choices))
    if kind == "literal":
        return str(draw(st.integers(min_value=-50, max_value=50)))
    if kind == "scalar":
        return draw(st.sampled_from(_SCALARS))
    if kind == "element":
        index = draw(expressions(depth=3))
        return f"{_ARRAY}[({index}) % {_ARRAY_SIZE} * (({index}) % {_ARRAY_SIZE} >= 0) ]"
    if kind == "unary":
        inner = draw(expressions(depth=depth + 1))
        op = draw(st.sampled_from(["-", "!"]))
        return f"{op}({inner})"
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<", "==", "&&"]))
    return f"({left} {op} {right})"


@st.composite
def safe_index(draw) -> str:
    """An always-in-bounds array index."""
    base = draw(expressions(depth=3))
    return f"((({base}) % {_ARRAY_SIZE}) + {_ARRAY_SIZE}) % {_ARRAY_SIZE}"


@st.composite
def statements(draw, depth: int = 0) -> str:
    kinds = ["assign", "assign", "element", "out"]
    if depth < 2:
        kinds += ["if", "for"]
    kind = draw(st.sampled_from(kinds))
    if kind == "assign":
        target = draw(st.sampled_from(_SCALARS))
        value = draw(expressions())
        return f"{target} = {value};"
    if kind == "element":
        index = draw(safe_index())
        value = draw(expressions())
        return f"{_ARRAY}[{index}] = {value};"
    if kind == "out":
        return f"out({draw(expressions())});"
    if kind == "if":
        condition = draw(expressions())
        body = draw(statements(depth=depth + 1))
        alternative = draw(statements(depth=depth + 1))
        return f"if ({condition}) {{ {body} }} else {{ {alternative} }}"
    # Bounded for loop over a dedicated counter; always terminates.
    counter = f"i{depth}"
    trips = draw(st.integers(min_value=1, max_value=5))
    body = draw(statements(depth=depth + 1))
    return (
        f"for ({counter} = 0; {counter} < {trips}; {counter} = {counter} + 1) "
        f"{{ {body} }}"
    )


@st.composite
def programs(draw) -> str:
    body = "\n        ".join(
        draw(statements()) for _ in range(draw(st.integers(1, 6)))
    )
    seeds = draw(st.lists(st.integers(-20, 20), min_size=3, max_size=3))
    return f"""
    int {_ARRAY}[{_ARRAY_SIZE}];
    void main() {{
        int a; int b; int c;
        int i0; int i1;
        a = {seeds[0]}; b = {seeds[1]}; c = {seeds[2]};
        {body}
        out(a); out(b); out(c);
        out({_ARRAY}[0] + {_ARRAY}[{_ARRAY_SIZE - 1}]);
    }}
    """


@settings(max_examples=40, deadline=None)
@given(programs())
def test_optimizer_preserves_behaviour(source):
    optimized = compile_source(source, optimize=True)
    plain = compile_source(source, optimize=False)
    assert run_program(optimized).outputs == run_program(plain).outputs


@settings(max_examples=30, deadline=None)
@given(programs())
def test_assembler_roundtrip_preserves_behaviour(source):
    program = compile_source(source)
    reassembled = assemble(disassemble(program))
    assert run_program(reassembled).outputs == run_program(program).outputs


@settings(max_examples=20, deadline=None)
@given(programs(), st.sampled_from([90.0, 50.0, 10.0]))
def test_annotation_preserves_behaviour(source, threshold):
    program = compile_source(source)
    image = collect_profile(program)
    annotated = annotate_program(
        program, image, AnnotationPolicy(accuracy_threshold=threshold)
    )
    assert run_program(annotated).outputs == run_program(program).outputs
