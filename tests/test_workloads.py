"""Tests for the 13 SPEC95-idiom workloads."""

from __future__ import annotations

import pytest

from repro.machine import run_program
from repro.workloads import (
    TABLE_4_1_NAMES,
    TEST_INDEX,
    TRAINING_RUNS,
    all_workloads,
    get_workload,
    table_4_1_workloads,
    workload_names,
)

ALL_NAMES = workload_names()
TINY = 0.03


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(ALL_NAMES) == 13

    def test_suites(self):
        assert len(workload_names("int")) == 8
        assert len(workload_names("fp")) == 5

    def test_table_4_1_selection(self):
        names = [w.name for w in table_4_1_workloads()]
        assert names == TABLE_4_1_NAMES
        assert len(names) == 9

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("999.nonsense")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEachWorkload:
    def test_compiles(self, name):
        program = get_workload(name).compile()
        assert len(program) > 100
        assert len(program.candidate_addresses) > 50

    def test_runs_to_completion_and_outputs(self, name):
        workload = get_workload(name)
        result = run_program(workload.compile(), workload.input_set(0, scale=TINY))
        assert result.halted
        assert result.outputs

    def test_deterministic(self, name):
        workload = get_workload(name)
        program = workload.compile()
        first = run_program(program, workload.input_set(0, scale=TINY))
        second = run_program(program, workload.input_set(0, scale=TINY))
        assert first.outputs == second.outputs
        assert first.instruction_count == second.instruction_count

    def test_training_inputs_are_distinct(self, name):
        workload = get_workload(name)
        program = workload.compile()
        outputs = [
            tuple(run_program(program, workload.input_set(index, scale=TINY)).outputs)
            for index in range(TRAINING_RUNS)
        ]
        assert len(set(outputs)) == TRAINING_RUNS

    def test_test_input_differs_from_training(self, name):
        workload = get_workload(name)
        program = workload.compile()
        test_output = tuple(
            run_program(program, workload.input_set(TEST_INDEX, scale=TINY)).outputs
        )
        train_output = tuple(
            run_program(program, workload.input_set(0, scale=TINY)).outputs
        )
        assert test_output != train_output

    def test_scale_controls_work(self, name):
        workload = get_workload(name)
        program = workload.compile()
        small = run_program(program, workload.input_set(0, scale=0.25))
        large = run_program(program, workload.input_set(0, scale=1.0))
        assert large.instruction_count > small.instruction_count


class TestPhases:
    @pytest.mark.parametrize("name", workload_names("fp"))
    def test_fp_workloads_mark_both_phases(self, name):
        from repro.machine import trace_program

        workload = get_workload(name)
        phases = set()
        for record in trace_program(
            workload.compile(), workload.input_set(0, scale=TINY)
        ):
            phases.add(record.phase)
        assert {1, 2} <= phases

    @pytest.mark.parametrize("name", workload_names("int"))
    def test_int_workloads_are_single_phase(self, name):
        from repro.machine import trace_program

        workload = get_workload(name)
        phases = set()
        for record in trace_program(
            workload.compile(), workload.input_set(0, scale=TINY)
        ):
            phases.add(record.phase)
        assert phases == {0}


class TestSuiteCharacter:
    def test_fp_workloads_have_fp_instructions(self):
        from repro.isa import Category

        for workload in all_workloads("fp"):
            program = workload.compile()
            categories = {i.category for i in program.instructions}
            assert Category.FP_ALU in categories
            assert Category.FP_LOAD in categories

    def test_large_working_set_benchmarks_exceed_table(self):
        # The table-pressure story of Figures 5.3/5.4 needs gcc and vortex
        # to have more live candidates than the 512-entry table.
        assert len(get_workload("126.gcc").compile().candidate_addresses) > 512
        assert len(get_workload("147.vortex").compile().candidate_addresses) > 512

    def test_small_working_set_benchmarks_fit_table(self):
        for name in ("124.m88ksim", "129.compress"):
            candidates = get_workload(name).compile().candidate_addresses
            assert len(candidates) < 512
