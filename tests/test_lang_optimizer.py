"""Unit tests for the AST folder and the stream peephole optimizer."""

from __future__ import annotations

import pytest

from repro.isa import Opcode, SP
from repro.lang import parse
from repro.lang import astnodes as ast
from repro.lang.emitter import Emitter, LabelMark, PendingInstruction
from repro.lang.optimizer import _fold_expr, fold_unit, peephole


def fold_expression(text: str):
    """Parse ``out(<text>);`` and fold the argument expression."""
    unit = parse(f"void main() {{ out({text}); }}")
    call = unit.functions[0].body.statements[0].expr
    return _fold_expr(call.args[0])


class TestConstantFolding:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1 + 2 * 3", 7),
            ("(10 - 4) / 2", 3),
            ("-7 / 2", -3),
            ("-7 % 2", -1),
            ("1 << 4", 16),
            ("255 & 15", 15),
            ("1 && 0", 0),
            ("0 || 7", 1),
            ("3 < 4", 1),
            ("!5", 0),
            ("-(2 + 3)", -5),
        ],
    )
    def test_integer_folds(self, text, expected):
        folded = fold_expression(text)
        assert isinstance(folded, ast.IntLiteral)
        assert folded.value == expected

    def test_float_folds(self):
        folded = fold_expression("1.5 * 2.0 + 1.0")
        assert isinstance(folded, ast.FloatLiteral)
        assert folded.value == 4.0

    def test_mixed_promotes(self):
        folded = fold_expression("1 + 0.5")
        assert isinstance(folded, ast.FloatLiteral)
        assert folded.value == 1.5

    def test_cast_folds(self):
        assert fold_expression("(int)3.9").value == 3
        assert fold_expression("(float)2").value == 2.0

    def test_identity_x_plus_zero(self):
        folded = fold_expression("x + 0")
        assert isinstance(folded, ast.VarRef)

    def test_identity_x_times_one(self):
        folded = fold_expression("x * 1")
        assert isinstance(folded, ast.VarRef)

    def test_division_by_zero_left_for_runtime(self):
        folded = fold_expression("1 / 0")
        assert isinstance(folded, ast.Binary)

    def test_does_not_drop_side_effects(self):
        # f() * 0 must NOT fold to 0.
        unit = parse(
            "int f() { return 1; } void main() { out(f() * 0); }"
        )
        fold_unit(unit)
        call_stmt = unit.functions[1].body.statements[0]
        assert isinstance(call_stmt.expr.args[0], ast.Binary)

    def test_fold_unit_walks_all_constructs(self):
        unit = parse(
            """
            void main() {
                int x = 1 + 1;
                if (2 > 1) { x = 2 * 2; }
                while (x < 3 + 3) { x = x + (4 - 2); }
                for (x = 0 + 0; x < 5 * 1; x = x + 1) { out(x); }
                return;
            }
            """
        )
        fold_unit(unit)
        body = unit.functions[0].body.statements
        assert body[0].init.value == 2          # local init folded
        assert body[1].cond.value == 1          # if condition folded
        assert body[2].cond.right.value == 6    # while bound folded


def _instruction(opcode, dest=None, srcs=(), imm=None, target=None):
    return PendingInstruction(opcode, dest, srcs, imm, target)


class TestPeephole:
    def test_mov_self_removed(self):
        stream = [_instruction(Opcode.MOV, dest=3, srcs=(3,))]
        assert peephole(stream) == []

    def test_mov_other_kept(self):
        stream = [_instruction(Opcode.MOV, dest=3, srcs=(4,))]
        assert peephole(stream) == stream

    def test_zero_adjust_removed(self):
        stream = [_instruction(Opcode.ADDI, dest=5, srcs=(5,), imm=0)]
        assert peephole(stream) == []

    def test_sp_adjustments_merge(self):
        stream = [
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=3),
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=2),
        ]
        merged = peephole(stream)
        assert len(merged) == 1
        assert merged[0].opcode is Opcode.SUBI and merged[0].imm == 5

    def test_opposite_sp_adjustments_cancel(self):
        stream = [
            _instruction(Opcode.ADDI, dest=SP, srcs=(SP,), imm=4),
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=4),
        ]
        assert peephole(stream) == []

    def test_sp_merge_stops_at_label(self):
        stream = [
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=3),
            LabelMark("x"),
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=2),
        ]
        merged = peephole(stream)
        assert len([i for i in merged if isinstance(i, PendingInstruction)]) == 2

    def test_jump_to_next_label_removed(self):
        stream = [
            _instruction(Opcode.JMP, target="end"),
            LabelMark("end"),
            _instruction(Opcode.HALT),
        ]
        merged = peephole(stream)
        assert all(
            not (isinstance(item, PendingInstruction) and item.opcode is Opcode.JMP)
            for item in merged
        )

    def test_jump_elsewhere_kept(self):
        stream = [
            _instruction(Opcode.JMP, target="far"),
            LabelMark("near"),
            _instruction(Opcode.NOP),
            LabelMark("far"),
            _instruction(Opcode.HALT),
        ]
        merged = peephole(stream)
        jumps = [
            item
            for item in merged
            if isinstance(item, PendingInstruction) and item.opcode is Opcode.JMP
        ]
        assert len(jumps) == 1

    def test_unreachable_code_after_jmp_removed(self):
        stream = [
            _instruction(Opcode.JMP, target="end"),
            _instruction(Opcode.LI, dest=1, imm=42),   # dead
            _instruction(Opcode.LI, dest=2, imm=43),   # dead
            LabelMark("end"),
            _instruction(Opcode.HALT),
        ]
        merged = peephole(stream)
        li_count = sum(
            1
            for item in merged
            if isinstance(item, PendingInstruction) and item.opcode is Opcode.LI
        )
        assert li_count == 0

    def test_code_after_label_not_removed(self):
        stream = [
            _instruction(Opcode.JR, srcs=(31,)),
            LabelMark("entry"),
            _instruction(Opcode.LI, dest=1, imm=1),
        ]
        merged = peephole(stream)
        assert any(
            isinstance(item, PendingInstruction) and item.opcode is Opcode.LI
            for item in merged
        )

    def test_idempotent(self):
        stream = [
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=3),
            _instruction(Opcode.SUBI, dest=SP, srcs=(SP,), imm=2),
            _instruction(Opcode.JMP, target="x"),
            LabelMark("x"),
            _instruction(Opcode.HALT),
        ]
        once = peephole(stream)
        assert peephole(once) == once


class TestEmitter:
    def test_labels_resolve_to_addresses(self):
        emitter = Emitter()
        emitter.emit(Opcode.JMP, target="end")
        emitter.emit(Opcode.NOP)
        emitter.mark("end")
        emitter.emit(Opcode.HALT)
        program = emitter.finalize(data={}, symbols={}, name="t")
        assert program[0].target == 2

    def test_unresolved_label_raises(self):
        from repro.lang.errors import CompileError

        emitter = Emitter()
        emitter.emit(Opcode.JMP, target="nowhere")
        with pytest.raises(CompileError):
            emitter.finalize(data={}, symbols={}, name="t")

    def test_generated_labels_unique(self):
        emitter = Emitter()
        assert emitter.new_label() != emitter.new_label()

    def test_public_labels_exported(self):
        emitter = Emitter()
        emitter.mark("main")
        emitter.emit(Opcode.HALT)
        emitter.mark(".hidden")
        program = emitter.finalize(data={}, symbols={}, name="t")
        assert program.labels == {"main": 0}
