"""Property-based tests: mini-C arithmetic matches a Python reference."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.machine import run_program


def _c_div(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


class ExpressionTree:
    """A random integer expression with a mini-C rendering and a reference
    Python evaluation (C semantics for / and %)."""

    def __init__(self, text: str, value: int):
        self.text = text
        self.value = value


_SAFE_INTS = st.integers(min_value=-1000, max_value=1000)


@st.composite
def expression_trees(draw, depth: int = 0) -> ExpressionTree:
    if depth >= 4 or draw(st.booleans()):
        value = draw(_SAFE_INTS)
        if value < 0:
            return ExpressionTree(f"(0 - {-value})", value)
        return ExpressionTree(str(value), value)
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]))
    left = draw(expression_trees(depth=depth + 1))
    right = draw(expression_trees(depth=depth + 1))
    if op == "+":
        value = left.value + right.value
    elif op == "-":
        value = left.value - right.value
    elif op == "*":
        value = left.value * right.value
    elif op == "/":
        if right.value == 0:
            return left
        value = _c_div(left.value, right.value)
    elif op == "%":
        if right.value == 0:
            return left
        value = _c_mod(left.value, right.value)
    elif op == "&":
        value = left.value & right.value
    elif op == "|":
        value = left.value | right.value
    else:
        value = left.value ^ right.value
    return ExpressionTree(f"({left.text} {op} {right.text})", value)


@settings(max_examples=60, deadline=None)
@given(expression_trees())
def test_expression_evaluation_matches_reference(tree):
    source = f"void main() {{ out({tree.text}); }}"
    outputs = run_program(compile_source(source)).outputs
    assert outputs == [tree.value]


@settings(max_examples=60, deadline=None)
@given(expression_trees())
def test_optimized_and_unoptimized_agree(tree):
    source = f"void main() {{ out({tree.text}); }}"
    optimized = run_program(compile_source(source, optimize=True)).outputs
    plain = run_program(compile_source(source, optimize=False)).outputs
    assert optimized == plain


@settings(max_examples=40, deadline=None)
@given(
    st.lists(_SAFE_INTS, min_size=1, max_size=10),
    st.integers(min_value=2, max_value=9),
)
def test_loop_sum_matches_python(values, scale):
    """A data-driven loop over in() matches the Python computation."""
    source = """
    void main() {
        int n; int i; int total;
        n = in();
        total = 0;
        for (i = 0; i < n; i = i + 1) {
            total = total + in() * %d;
        }
        out(total);
    }
    """ % scale
    inputs = [len(values)] + values
    outputs = run_program(compile_source(source), inputs=inputs).outputs
    assert outputs == [sum(v * scale for v in values)]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=12))
def test_array_reverse_roundtrip(values):
    """Writing then reading an array in reverse preserves all elements."""
    source = """
    int buffer[16];
    void main() {
        int n; int i;
        n = in();
        for (i = 0; i < n; i = i + 1) { buffer[i] = in(); }
        for (i = n - 1; i >= 0; i = i - 1) { out(buffer[i]); }
    }
    """
    inputs = [len(values)] + values
    outputs = run_program(compile_source(source), inputs=inputs).outputs
    assert outputs == list(reversed(values))
