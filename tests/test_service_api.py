"""Tests for the service wire contract (repro.service.api)."""

from __future__ import annotations

import pytest

from repro.service import api


ALL_JOBS = [
    api.CompileJob(source="void main() { out(1); }", name="demo", optimize=False),
    api.TraceJob(program=".text\n", name="t", inputs=(1, 2.5, -3), max_instructions=100),
    api.ProfileJob(program=".text\n", name="p", input_sets=((1, 2), (), (3,))),
    api.AnnotateJob(
        program=".text\n",
        profile="# repro-profile-image v1\n",
        name="a",
        accuracy_threshold=80.0,
        stride_threshold=40.0,
    ),
    api.ExperimentJob(experiment="fig-5.1", scale=0.5, training_runs=3),
]


class TestJobRoundTrip:
    @pytest.mark.parametrize("job", ALL_JOBS, ids=lambda j: j.KIND)
    def test_to_from_dict_identity(self, job):
        assert api.job_from_dict(job.to_dict()) == job

    @pytest.mark.parametrize("job", ALL_JOBS, ids=lambda j: j.KIND)
    def test_digest_stable_and_distinct(self, job):
        first = api.job_digest(job)
        assert first == api.job_digest(api.job_from_dict(job.to_dict()))
        others = [other for other in ALL_JOBS if other is not job]
        assert all(api.job_digest(other) != first for other in others)

    def test_digest_sensitive_to_payload(self):
        base = api.CompileJob(source="a")
        assert api.job_digest(base) != api.job_digest(api.CompileJob(source="b"))

    def test_defaults_fill_in(self):
        job = api.job_from_dict({"kind": "trace", "program": "x"})
        assert job == api.TraceJob(program="x")
        assert job.inputs == () and job.max_instructions is None

    def test_profile_default_input_sets(self):
        job = api.job_from_dict({"kind": "profile", "program": "x"})
        assert job.input_sets == ((),)


class TestJobValidation:
    def test_unknown_kind(self):
        with pytest.raises(api.ApiError) as info:
            api.job_from_dict({"kind": "bake-cake"})
        assert info.value.code == api.INVALID_JOB

    def test_non_object_payload(self):
        with pytest.raises(api.ApiError) as info:
            api.job_from_dict("compile")
        assert info.value.code == api.BAD_REQUEST

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "compile"},  # missing source
            {"kind": "compile", "source": ""},  # empty source
            {"kind": "trace", "program": "x", "inputs": "1,2"},  # not a list
            {"kind": "trace", "program": "x", "inputs": [1, "two"]},
            {"kind": "trace", "program": "x", "inputs": [True]},  # bool is not a number
            {"kind": "trace", "program": "x", "max_instructions": 1.5},
            {"kind": "profile", "program": "x", "input_sets": []},
            {"kind": "profile", "program": "x", "input_sets": [[1], ["x"]]},
            {"kind": "annotate", "program": "x"},  # missing profile
            {"kind": "annotate", "program": "x", "profile": "p",
             "accuracy_threshold": "high"},
            {"kind": "experiment", "experiment": "fig-5.1", "scale": 0},
            {"kind": "experiment", "experiment": "fig-5.1", "training_runs": 0},
            {"kind": "experiment", "experiment": "fig-5.1", "training_runs": 1.5},
        ],
    )
    def test_invalid_payloads(self, payload):
        with pytest.raises(api.ApiError) as info:
            api.job_from_dict(payload)
        assert info.value.code == api.INVALID_JOB


class TestErrorTaxonomy:
    def test_every_code_has_a_status(self):
        assert set(api.HTTP_STATUS) == set(api.ERROR_CODES)
        assert all(400 <= status <= 599 for status in api.HTTP_STATUS.values())

    def test_api_error_maps_to_status(self):
        assert api.ApiError(api.UNKNOWN_JOB, "x").http_status == 404
        assert api.ApiError(api.QUOTA_EXCEEDED, "x").http_status == 429
        assert api.ApiError(api.SHUTTING_DOWN, "x").http_status == 503

    def test_unknown_code_collapses_to_internal(self):
        error = api.ApiError("made-up-code", "oops")
        assert error.code == api.INTERNAL_ERROR
        assert error.http_status == 500

    def test_info_round_trip_and_raise(self):
        info = api.ApiError(api.QUEUE_FULL, "deep").to_info()
        again = api.ErrorInfo.from_dict(info.to_dict())
        assert again == info
        with pytest.raises(api.ApiError) as caught:
            again.raise_()
        assert caught.value.code == api.QUEUE_FULL
        assert caught.value.message == "deep"


class TestEnvelopes:
    def test_submit_round_trip(self):
        request = api.SubmitRequest(job=ALL_JOBS[0], tenant="alice", priority=3)
        again = api.SubmitRequest.from_dict(request.to_dict())
        assert again == request

    def test_submit_rejects_wrong_schema(self):
        payload = api.SubmitRequest(job=ALL_JOBS[0]).to_dict()
        payload["schema"] = "repro-serve/999"
        with pytest.raises(api.ApiError) as info:
            api.SubmitRequest.from_dict(payload)
        assert info.value.code == api.BAD_REQUEST

    def test_submit_rejects_bad_tenant_and_priority(self):
        good = api.SubmitRequest(job=ALL_JOBS[0]).to_dict()
        for field, bad in (("tenant", ""), ("tenant", 7), ("priority", "high"),
                           ("priority", True)):
            payload = dict(good)
            payload[field] = bad
            with pytest.raises(api.ApiError) as info:
                api.SubmitRequest.from_dict(payload)
            assert info.value.code == api.BAD_REQUEST

    def test_status_and_result_round_trip(self):
        status = api.JobStatus(
            job_id="compile-00001-abc", kind="compile", tenant="t",
            state=api.RUNNING, priority=2, attempts=1, seconds=0.5,
            error=api.ErrorInfo(api.EXECUTION_ERROR, "boom"),
        )
        assert api.JobStatus.from_dict(status.to_dict()) == status
        result = api.JobResult(
            job_id="compile-00001-abc", kind="compile", state=api.DONE,
            output="text", meta={"instructions": 3},
        )
        assert api.JobResult.from_dict(result.to_dict()) == result

    def test_server_stats_round_trip(self):
        stats = api.ServerStats(
            state="serving", queued=1, running=2, finished=3,
            tenants={"a": 2, "b": 1}, queue_depth=64, tenant_quota=8,
        )
        assert api.ServerStats.from_dict(stats.to_dict()) == stats

    def test_every_envelope_carries_schema(self):
        request = api.SubmitRequest(job=ALL_JOBS[0])
        for payload in (
            request.to_dict(),
            api.SubmitReply("id", api.QUEUED, 0).to_dict(),
            api.JobStatus("id", "compile", "t", api.QUEUED).to_dict(),
            api.JobResult("id", "compile", api.DONE).to_dict(),
            api.ServerStats("serving", 0, 0, 0, {}, 64, 8).to_dict(),
        ):
            assert payload["schema"] == api.SCHEMA


class TestStatesAndPaths:
    def test_terminal_states_are_states(self):
        assert set(api.TERMINAL_STATES) <= set(api.JOB_STATES)
        assert api.QUEUED not in api.TERMINAL_STATES
        assert api.RUNNING not in api.TERMINAL_STATES

    def test_paths(self):
        assert api.job_path("abc") == "/v1/jobs/abc"
        assert api.result_path("abc") == "/v1/jobs/abc/result"
