"""Unit tests for the annotation policy and the phase-3 annotator."""

from __future__ import annotations

import pytest

from repro.annotate import (
    AnnotationPolicy,
    annotate_program,
    annotation_report,
    plan_directives,
)
from repro.isa import Directive, assemble
from repro.profiling import InstructionProfile, ProfileImage, collect_profile


def make_profile(address, executions, attempts, correct, nonzero):
    return InstructionProfile(address, executions, attempts, correct, nonzero)


class TestPolicy:
    def test_high_accuracy_high_stride_gets_stride(self):
        policy = AnnotationPolicy(accuracy_threshold=90.0)
        profile = make_profile(1, 100, 100, 95, 90)
        assert policy.classify(profile) is Directive.STRIDE

    def test_high_accuracy_low_stride_gets_last_value(self):
        policy = AnnotationPolicy(accuracy_threshold=90.0)
        profile = make_profile(1, 100, 100, 95, 5)
        assert policy.classify(profile) is Directive.LAST_VALUE

    def test_low_accuracy_untagged(self):
        policy = AnnotationPolicy(accuracy_threshold=90.0)
        profile = make_profile(1, 100, 100, 50, 50)
        assert policy.classify(profile) is None

    def test_threshold_is_inclusive(self):
        # Paper: "greater than or equal to 90% are marked as predictable".
        policy = AnnotationPolicy(accuracy_threshold=90.0)
        profile = make_profile(1, 100, 100, 90, 0)
        assert policy.classify(profile) is Directive.LAST_VALUE

    def test_min_attempts_guard(self):
        policy = AnnotationPolicy(accuracy_threshold=50.0, min_attempts=5)
        profile = make_profile(1, 2, 1, 1, 1)   # 100% accurate but 1 attempt
        assert policy.classify(profile) is None

    def test_stride_threshold_boundary_is_exclusive(self):
        # "greater than 50%" -> exactly 50% goes to last-value.
        policy = AnnotationPolicy(accuracy_threshold=0.0, stride_threshold=50.0)
        profile = make_profile(1, 100, 100, 100, 50)
        assert policy.classify(profile) is Directive.LAST_VALUE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"accuracy_threshold": -1.0},
            {"accuracy_threshold": 101.0},
            {"stride_threshold": 101.0},
            {"min_attempts": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnnotationPolicy(**kwargs)


class TestAnnotator:
    STRIDE_LOOP = """
.text
    li r1, 0
    li r2, 50
loop:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, loop
    halt
"""

    def annotated_loop(self, threshold=90.0):
        program = assemble(self.STRIDE_LOOP)
        image = collect_profile(program)
        policy = AnnotationPolicy(accuracy_threshold=threshold)
        return program, image, annotate_program(program, image, policy)

    def test_loop_counter_tagged_stride(self):
        _program, _image, annotated = self.annotated_loop()
        assert annotated[2].directive is Directive.STRIDE  # the addi

    def test_code_is_not_moved(self):
        program, _image, annotated = self.annotated_loop()
        assert len(annotated) == len(program)
        for original, tagged in zip(program, annotated):
            assert original.opcode is tagged.opcode
            assert original.srcs == tagged.srcs
            assert original.target == tagged.target

    def test_original_program_untouched(self):
        program, _image, _annotated = self.annotated_loop()
        assert program.directives() == {}

    def test_unprofiled_candidates_untagged(self):
        program = assemble(self.STRIDE_LOOP)
        empty_image = ProfileImage("empty")
        annotated = annotate_program(program, empty_image, AnnotationPolicy())
        assert annotated.directives() == {}

    def test_plan_covers_all_candidates(self):
        program, image, _annotated = self.annotated_loop()
        plan = plan_directives(program, image, AnnotationPolicy())
        assert set(plan) == set(program.candidate_addresses)

    def test_report_counts(self):
        program, image, _annotated = self.annotated_loop(threshold=90.0)
        report = annotation_report(program, image, AnnotationPolicy(90.0))
        assert report.candidates == len(program.candidate_addresses)
        assert report.tagged == report.stride_tagged + report.last_value_tagged
        assert 0 < report.tagged_fraction <= 1.0

    def test_lower_threshold_tags_more(self):
        program, image, _annotated = self.annotated_loop()
        strict = annotation_report(program, image, AnnotationPolicy(95.0))
        loose = annotation_report(program, image, AnnotationPolicy(10.0))
        assert loose.tagged >= strict.tagged
