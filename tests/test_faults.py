"""Fault-injection and retry tests for the experiment engine.

Unit coverage for :mod:`repro.runner.faults` and
:mod:`repro.runner.retry`, plus the chaos suite: property-based runs
under randomly generated (but seeded and fully deterministic) fault
plans, asserting the two load-bearing recovery guarantees:

* any plan whose faults are all retryable converges to results
  byte-identical to a fault-free serial run, with the retry telemetry
  reporting *exactly* the injected fault count, and
* a plan that exhausts a job's retries degrades the run into a
  structured :class:`~repro.runner.retry.RunReport` naming exactly the
  failed job and its transitive dependents — independent jobs still
  complete.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.context import ExperimentContext
from repro.runner import serialize
from repro.runner.executor import execute_graph
from repro.runner.faults import (
    CORRUPTION_PREFIX,
    ENV_VAR,
    Fault,
    FaultPlan,
    TransientFault,
    active_plan,
    corrupt_payload,
    resolve_plan,
)
from repro.runner.jobs import (
    Job,
    JobGraph,
    annotate_id,
    classify_id,
    compile_id,
    profile_id,
)
from repro.runner.retry import (
    RetryPolicy,
    RunReport,
    JobReport,
    deterministic_jitter,
)
from repro.telemetry import Telemetry, use_registry

WORKLOADS = ("129.compress", "107.mgrid")
RUNS = 2


def make_context() -> ExperimentContext:
    return ExperimentContext(scale=0.02, training_runs=RUNS, cache_dir=None)


def profile_graph(chain: bool = False) -> JobGraph:
    """Compile + profile cells; ``chain`` adds annotate -> classify.

    Small by design: the chaos suite re-executes this graph many times,
    so it must stay a few seconds per run at scale 0.02.
    """
    graph = JobGraph()
    for workload in WORKLOADS:
        graph.add(Job(compile_id(workload), "compile", workload, inline=True))
    for workload in WORKLOADS:
        profiles = []
        for run_index in range(RUNS):
            job = graph.add(
                Job(
                    profile_id(workload, run_index),
                    "profile",
                    workload,
                    params=(run_index,),
                    deps=(compile_id(workload),),
                )
            )
            profiles.append(job.job_id)
        if chain:
            annotate = graph.add(
                Job(
                    annotate_id(workload, 90.0),
                    "annotate",
                    workload,
                    params=(90.0,),
                    deps=tuple(profiles),
                )
            )
            graph.add(
                Job(
                    classify_id(workload),
                    "classify",
                    workload,
                    deps=(annotate.job_id,),
                )
            )
    return graph


POOL_JOB_IDS = tuple(
    job.job_id for job in profile_graph().order() if not job.inline
)


def profile_payloads(outcome) -> dict:
    return {
        job_id: serialize.encode("profile", value)
        for job_id, value in outcome.values.items()
        if job_id.startswith("profile:")
    }


@pytest.fixture(scope="module")
def serial_baseline():
    """Fault-free serial run of the chaos graph; the ground truth."""
    outcome = execute_graph(profile_graph(), make_context())
    assert outcome.report is not None and outcome.report.ok
    return profile_payloads(outcome)


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meltdown", "profile:x:0")

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            Fault("transient", "profile:x:0", attempt=0)

    def test_defaults(self):
        fault = Fault("transient", "profile:x:0")
        assert fault.attempt == 1
        assert fault.seconds == 60.0


class TestFaultPlan:
    def plan(self) -> FaultPlan:
        return FaultPlan(
            [
                Fault("transient", "profile:a:0", 1),
                Fault("transient", "profile:a:0", 2),
                Fault("crash", "profile:b:1", 1),
                Fault("corrupt", "profile:c:0", 3),
            ],
            seed=7,
        )

    def test_duplicate_fault_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            FaultPlan(
                [
                    Fault("transient", "profile:a:0", 1),
                    Fault("crash", "profile:a:0", 1),
                ]
            )

    def test_fault_for(self):
        plan = self.plan()
        assert plan.fault_for("profile:a:0", 1).kind == "transient"
        assert plan.fault_for("profile:a:0", 3) is None
        assert plan.fault_for("unknown", 1) is None

    def test_iteration_is_sorted(self):
        ordered = [(f.job_id, f.attempt) for f in self.plan()]
        assert ordered == sorted(ordered)

    def test_json_roundtrip(self):
        plan = self.plan()
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.seed == plan.seed

    def test_unknown_json_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_json('{"version": 99, "faults": []}')

    def test_pickle_roundtrip(self):
        plan = self.plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_generate_is_seed_deterministic(self):
        jobs = [f"profile:w:{i}" for i in range(40)]
        first = FaultPlan.generate(jobs, seed=1997, rate=0.5)
        second = FaultPlan.generate(jobs, seed=1997, rate=0.5)
        assert first == second and len(first) > 0
        assert FaultPlan.generate(jobs, seed=1998, rate=0.5) != first

    def test_generate_targets_only_given_jobs(self):
        jobs = [f"profile:w:{i}" for i in range(20)]
        plan = FaultPlan.generate(jobs, seed=3, rate=1.0)
        assert len(plan) == len(jobs)
        assert set(plan.job_ids()) == set(jobs)

    def test_consecutive_failures_counts_leading_run(self):
        plan = self.plan()
        assert plan.consecutive_failures("profile:a:0") == 2
        assert plan.consecutive_failures("profile:b:1") == 1
        # The attempt-3 fault never fires: attempts 1 and 2 are clean.
        assert plan.consecutive_failures("profile:c:0") == 0
        assert plan.consecutive_failures("unknown") == 0

    def test_is_recoverable(self):
        plan = self.plan()
        assert not plan.is_recoverable(2)  # profile:a:0 needs 3 attempts
        assert plan.is_recoverable(3)

    def test_expected_retries(self):
        plan = self.plan()
        # a: 2 leading faults, b: 1, c: 0 (unreachable attempt-3 fault).
        assert plan.expected_retries(4) == 3
        # With max_attempts=2, job a is capped at 1 retry before failing.
        assert plan.expected_retries(2) == 2

    def test_fire_transient_raises_everywhere(self):
        plan = FaultPlan([Fault("transient", "j", 1)])
        with pytest.raises(TransientFault):
            plan.fire("j", 1, in_worker=True)
        with pytest.raises(TransientFault):
            plan.fire("j", 1, in_worker=False)
        assert plan.fire("j", 2, in_worker=True) is None

    def test_fire_worker_only_kinds_noop_in_coordinator(self):
        plan = FaultPlan(
            [Fault("crash", "c", 1), Fault("hang", "h", 1, seconds=30.0)]
        )
        # Neither crashes nor stalls this (the coordinating) process.
        assert plan.fire("c", 1, in_worker=False) is None
        assert plan.fire("h", 1, in_worker=False) is None

    def test_fire_returns_corrupt_for_caller(self):
        plan = FaultPlan([Fault("corrupt", "j", 1)])
        fault = plan.fire("j", 1, in_worker=True)
        assert fault is not None and fault.kind == "corrupt"
        assert plan.fire("j", 1, in_worker=False) is None

    def test_corrupt_payload_breaks_decoding(self):
        mangled = corrupt_payload('{"valid": "json"}')
        assert mangled.startswith(CORRUPTION_PREFIX)
        with pytest.raises(serialize.PayloadError):
            serialize.decode("classify", mangled)


class TestResolvePlan:
    def test_none_and_plan_pass_through(self):
        plan = FaultPlan([Fault("transient", "j", 1)])
        assert resolve_plan(None) is None
        assert resolve_plan(plan) is plan

    def test_inline_json(self):
        plan = FaultPlan([Fault("transient", "j", 1)])
        assert resolve_plan(plan.to_json()) == plan

    def test_at_path_and_bare_path(self, tmp_path):
        plan = FaultPlan([Fault("crash", "j", 2)])
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert resolve_plan(f"@{path}") == plan
        assert resolve_plan(str(path)) == plan

    def test_named_plan_needs_graph(self):
        with pytest.raises(ValueError, match="needs a job graph"):
            resolve_plan("ci-smoke")

    def test_ci_smoke_is_recoverable_with_one_retry(self):
        graph = profile_graph(chain=True)
        plan = resolve_plan("ci-smoke", graph)
        assert len(plan) > 0
        assert plan.is_recoverable(2)
        # Pinned seed: the same graph always yields the same plan.
        assert plan == resolve_plan("ci-smoke", graph)
        assert set(plan.job_ids()) <= {
            job.job_id for job in graph.order() if not job.inline
        }

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            resolve_plan("no-such-plan")
        with pytest.raises(TypeError):
            resolve_plan(42)

    def test_active_plan_tracks_env(self, monkeypatch):
        plan = FaultPlan([Fault("transient", "j", 1)])
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_plan() is None
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert active_plan() == plan
        changed = FaultPlan([Fault("corrupt", "k", 1)])
        monkeypatch.setenv(ENV_VAR, changed.to_json())
        assert active_plan() == changed


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(job_timeout=0.0)

    def test_from_cli(self):
        policy = RetryPolicy.from_cli(retries=2, job_timeout=30.0)
        assert policy.max_attempts == 3
        assert policy.retries == 2
        assert policy.job_timeout == 30.0
        assert RetryPolicy.from_cli(retries=-1).max_attempts == 1

    def test_jitter_deterministic_and_bounded(self):
        values = [deterministic_jitter(f"job-{i}", 1) for i in range(50)]
        assert values == [deterministic_jitter(f"job-{i}", 1) for i in range(50)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert len(set(values)) > 40  # decorrelated across jobs

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5)
        for attempt in range(1, 5):
            first = policy.backoff_seconds("profile:x:0", attempt)
            assert first == policy.backoff_seconds("profile:x:0", attempt)
            raw = min(
                policy.backoff_cap,
                policy.backoff_base * policy.backoff_factor ** (attempt - 1),
            )
            assert 0.5 * raw <= first < 1.5 * raw

    def test_backoff_grows_until_capped(self):
        policy = RetryPolicy(max_attempts=16, backoff_cap=1.0)
        # Strip the jitter scale to see the raw exponential schedule.
        raw = [
            policy.backoff_seconds("j", attempt)
            / (0.5 + deterministic_jitter("j", attempt))
            for attempt in range(1, 10)
        ]
        assert raw == sorted(raw)
        assert raw[-1] == policy.backoff_cap


class TestRunReport:
    def report(self) -> RunReport:
        return RunReport(
            jobs=[
                JobReport("compile:w", "compile", "compile(w)", "ok", 1, 0.1),
                JobReport(
                    "profile:w:0",
                    "profile",
                    "profile(w, run 0)",
                    "failed",
                    2,
                    3.5,
                    causes=(
                        "attempt 1: TransientFault: injected",
                        "attempt 2: timed out after 4s",
                    ),
                ),
                JobReport(
                    "classify:w",
                    "classify",
                    "classify(w)",
                    "skipped",
                    0,
                    0.0,
                    causes=("dependency profile:w:0 failed",),
                ),
            ],
            retries=1,
            timeouts=1,
            pool_rebuilds=1,
        )

    def test_counts_and_status(self):
        report = self.report()
        assert report.counts() == {"ok": 1, "cached": 0, "failed": 1, "skipped": 1}
        assert not report.ok
        assert report.exit_code == 1
        assert [entry.job_id for entry in report.failed] == ["profile:w:0"]
        assert [entry.job_id for entry in report.skipped] == ["classify:w"]
        assert report.job("compile:w").status == "ok"
        assert report.job("missing") is None

    def test_format_names_failures_and_causes(self):
        text = self.report().format()
        assert "3 jobs" in text and "1 failed, 1 skipped" in text
        assert "profile:w:0" in text
        assert "attempt 2: timed out after 4s" in text
        assert "classify:w — dependency profile:w:0 failed" in text

    def test_json_schema(self):
        import json

        payload = json.loads(self.report().to_json())
        assert payload["schema"] == "repro-run/1"
        assert payload["retries"] == 1
        assert payload["counts"]["failed"] == 1
        assert payload["jobs"][1]["causes"][0].startswith("attempt 1")

    def test_empty_run_is_ok(self):
        report = RunReport()
        assert report.ok and report.exit_code == 0


def fault_run_strategy():
    """Per-job leading fault runs: (job_id, [kind for attempt 1..n])."""
    kind = st.sampled_from(["transient", "corrupt", "crash"])
    return st.fixed_dictionaries(
        {job_id: st.lists(kind, min_size=0, max_size=2) for job_id in POOL_JOB_IDS}
    )


class TestChaos:
    """The chaos suite: generated fault plans against real engine runs."""

    MAX_ATTEMPTS = 4  # > the longest generated fault run: always recoverable

    @settings(max_examples=5, deadline=None)
    @given(fault_run_strategy())
    def test_retryable_plans_converge_byte_identical(
        self, serial_baseline, fault_runs
    ):
        plan = FaultPlan(
            [
                Fault(kind, job_id, attempt)
                for job_id, kinds in fault_runs.items()
                for attempt, kind in enumerate(kinds, start=1)
            ]
        )
        assert plan.is_recoverable(self.MAX_ATTEMPTS)
        registry = Telemetry()
        with use_registry(registry):
            outcome = execute_graph(
                profile_graph(),
                make_context(),
                jobs=2,
                retry=RetryPolicy(max_attempts=self.MAX_ATTEMPTS),
                fault_plan=plan,
            )
        report = outcome.report
        assert report.ok, report.format()
        assert profile_payloads(outcome) == serial_baseline
        expected = plan.expected_retries(self.MAX_ATTEMPTS)
        assert report.retries == expected
        counted = registry.snapshot()["counters"].get("runner.retries", 0)
        assert counted == expected

    def test_crash_and_transients_converge(self, serial_baseline):
        """1 crash + 2 transients on distinct jobs: recovered exactly."""
        plan = FaultPlan(
            [
                Fault("crash", profile_id("129.compress", 0), 1),
                Fault("transient", profile_id("129.compress", 1), 1),
                Fault("transient", profile_id("107.mgrid", 0), 1),
            ]
        )
        outcome = execute_graph(
            profile_graph(),
            make_context(),
            jobs=2,
            retry=RetryPolicy(max_attempts=4),
            fault_plan=plan,
        )
        report = outcome.report
        assert report.ok, report.format()
        assert report.retries == plan.expected_retries(4) == 3
        assert report.pool_rebuilds >= 1
        assert profile_payloads(outcome) == serial_baseline

    def test_hang_recovered_by_timeout(self, serial_baseline):
        """A hung attempt is killed at the deadline and retried clean."""
        plan = FaultPlan(
            [Fault("hang", profile_id("129.compress", 0), 1, seconds=60.0)]
        )
        outcome = execute_graph(
            profile_graph(),
            make_context(),
            jobs=2,
            retry=RetryPolicy(max_attempts=3, job_timeout=8.0),
            fault_plan=plan,
        )
        report = outcome.report
        assert report.ok, report.format()
        assert report.timeouts == 1
        assert report.pool_rebuilds == 1
        assert report.retries == 1
        hung = report.job(profile_id("129.compress", 0))
        assert hung.attempts == 2
        assert any("timed out" in cause for cause in hung.causes)
        assert profile_payloads(outcome) == serial_baseline

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exhausted_retries_degrade_to_report(self, jobs):
        """Criterion: failed job named, dependents skipped, rest completes."""
        victim = profile_id("129.compress", 0)
        plan = FaultPlan(
            [Fault("transient", victim, 1), Fault("transient", victim, 2)]
        )
        graph = profile_graph(chain=True)
        outcome = execute_graph(
            graph,
            make_context(),
            jobs=jobs,
            retry=RetryPolicy(max_attempts=2),
            fault_plan=plan,
        )
        report = outcome.report
        assert not report.ok and report.exit_code == 1
        assert [entry.job_id for entry in report.failed] == [victim]
        failed = report.job(victim)
        assert failed.attempts == 2
        assert len(failed.causes) == 2
        assert all("TransientFault" in cause for cause in failed.causes)
        # Skipped = exactly the transitive dependents of the failed job.
        expected_skips = set(graph.transitive_dependents(victim))
        assert {entry.job_id for entry in report.skipped} == expected_skips
        assert expected_skips == {
            annotate_id("129.compress", 90.0),
            classify_id("129.compress"),
        }
        # Every job outside the failure cone completed normally.
        untouched = set(graph.jobs) - {victim} - expected_skips
        for job_id in untouched:
            assert report.job(job_id).status in ("ok", "cached"), job_id
        assert "dependency" in report.skipped[0].causes[-1]
