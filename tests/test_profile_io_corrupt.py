"""Corrupt/truncated profile files must raise typed format errors.

``read_any_profile`` and ``read_sketch`` are the fleet ingestion
boundary: whatever garbage an edge node ships — truncated uploads, a
mangled magic line, corrupt deflate bodies, binary noise — the loader
must fail with :class:`ProfileFormatError` (or its
:class:`SketchFormatError` subclass), never a bare ``struct.error``,
``zlib.error`` or ``UnicodeDecodeError`` that callers cannot attribute
to a bad file.
"""

from __future__ import annotations

import pytest

from repro.machine import Executor
from repro.profiling import (
    ProfileSketch,
    collect_profile,
    dumps_profile,
    read_any_profile,
    save_profile,
    save_sketch,
)
from repro.profiling.image_io import ProfileFormatError, read_profile
from repro.profiling.sketch import SKETCH_MAGIC, SketchFormatError, read_sketch
from repro.workloads.corpus import generate_corpus


@pytest.fixture(scope="module")
def image():
    workload = generate_corpus(1997, 1)[0]
    program = workload.compile()
    records = list(Executor(program, inputs=workload.test_inputs()).run())
    return collect_profile(program, records=records, run_label="train")


@pytest.fixture()
def text_path(tmp_path, image):
    path = tmp_path / "image.profile"
    save_profile(image, path)
    return path


@pytest.fixture()
def sketch_path(tmp_path, image):
    path = tmp_path / "image.sketch"
    save_sketch(ProfileSketch.from_image(image), path)
    return path


class TestTextProfiles:
    def test_round_trip_baseline(self, text_path, image):
        assert dumps_profile(read_any_profile(text_path)) == dumps_profile(image)

    def test_mangled_magic(self, tmp_path, text_path):
        bad = tmp_path / "magic.profile"
        bad.write_bytes(b"# wrong-magic v9\n" + text_path.read_bytes())
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)

    def test_truncated_mid_line(self, tmp_path, text_path):
        payload = text_path.read_bytes()
        bad = tmp_path / "trunc.profile"
        # Cut inside the last data row so the field count is wrong.
        bad.write_bytes(payload[: payload.rindex(b" ") - 1])
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)

    def test_binary_garbage_not_unicode_error(self, tmp_path):
        bad = tmp_path / "garbage.profile"
        bad.write_bytes(bytes(range(256)) * 4)
        with pytest.raises(ProfileFormatError):
            read_profile(bad)
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)

    def test_duplicate_row(self, tmp_path, text_path, image):
        address = next(iter(image.instructions))
        profile = image.instructions[address]
        row = (
            f"{address} {profile.executions} {profile.attempts} "
            f"{profile.correct} {profile.nonzero_stride_correct}\n"
        )
        bad = tmp_path / "dup.profile"
        bad.write_text(
            text_path.read_text(encoding="utf-8") + row, encoding="utf-8"
        )
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)

    def test_empty_file(self, tmp_path):
        bad = tmp_path / "empty.profile"
        bad.write_bytes(b"")
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)


class TestSketches:
    def test_round_trip_baseline(self, sketch_path, image):
        assert dumps_profile(read_any_profile(sketch_path)) == dumps_profile(
            image
        )

    def test_truncated_sketch(self, tmp_path, sketch_path):
        payload = sketch_path.read_bytes()
        for cut in (len(SKETCH_MAGIC) + 2, len(payload) // 2, len(payload) - 1):
            bad = tmp_path / f"trunc{cut}.sketch"
            bad.write_bytes(payload[:cut])
            with pytest.raises(SketchFormatError):
                read_sketch(bad)
            with pytest.raises(ProfileFormatError):
                read_any_profile(bad)

    def test_corrupt_deflate_body(self, tmp_path, sketch_path):
        payload = bytearray(sketch_path.read_bytes())
        # Flip bytes well inside the compressed body.
        for offset in range(len(SKETCH_MAGIC) + 4, len(SKETCH_MAGIC) + 12):
            payload[offset] ^= 0xFF
        bad = tmp_path / "corrupt.sketch"
        bad.write_bytes(bytes(payload))
        with pytest.raises(SketchFormatError):
            read_sketch(bad)
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)

    def test_trailing_bytes(self, tmp_path, sketch_path):
        bad = tmp_path / "trailing.sketch"
        bad.write_bytes(sketch_path.read_bytes() + b"\x00\x01\x02")
        with pytest.raises(SketchFormatError):
            read_sketch(bad)

    def test_sketch_magic_mangled_falls_to_text_and_types(self, tmp_path, sketch_path):
        # Break the magic: the sniffing loader treats it as a text image
        # and must still surface a typed error for the binary body.
        payload = bytearray(sketch_path.read_bytes())
        payload[0] ^= 0xFF
        bad = tmp_path / "notmagic.sketch"
        bad.write_bytes(bytes(payload))
        with pytest.raises(ProfileFormatError):
            read_any_profile(bad)

    def test_wrong_kind_for_read_sketch(self, text_path):
        with pytest.raises(SketchFormatError):
            read_sketch(text_path)
