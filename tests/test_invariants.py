"""Cross-cutting invariants tying the subsystems together."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotate import AnnotationPolicy, annotate_program
from repro.core import AlwaysClassification, PredictionEngine
from repro.ilp import IlpConfig, measure_ilp
from repro.machine import trace_program
from repro.predictors import StridePredictor
from repro.profiling import collect_profile, merge_profiles
from repro.workloads import get_workload

SCALE = 0.04
WORKLOAD = "129.compress"


@pytest.fixture(scope="module")
def workload_setup():
    workload = get_workload(WORKLOAD)
    program = workload.compile()
    inputs = workload.input_set(0, scale=SCALE)
    image = collect_profile(program, inputs)
    return workload, program, inputs, image


class TestDirectiveInvariance:
    """Directives are pure metadata: execution must be identical."""

    @pytest.mark.parametrize("threshold", [95.0, 70.0, 30.0, 0.0])
    def test_traces_identical(self, workload_setup, threshold):
        _workload, program, inputs, image = workload_setup
        annotated = annotate_program(
            program, image, AnnotationPolicy(accuracy_threshold=threshold)
        )
        original = [
            (r.address, r.value, r.mem_address)
            for r in trace_program(program, inputs)
        ]
        tagged = [
            (r.address, r.value, r.mem_address)
            for r in trace_program(annotated, inputs)
        ]
        assert original == tagged


class TestIlpMonotonicity:
    def test_larger_window_never_slower(self, workload_setup):
        _workload, program, inputs, _image = workload_setup
        cycles = [
            measure_ilp(program, inputs, config=IlpConfig(window_size=w)).cycles
            for w in (4, 16, 64)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_higher_penalty_never_faster(self, workload_setup):
        _workload, program, inputs, _image = workload_setup

        def run(penalty):
            engine = PredictionEngine(
                program, StridePredictor(), AlwaysClassification()
            )
            return measure_ilp(
                program,
                inputs,
                engine=engine,
                config=IlpConfig(misprediction_penalty=penalty),
            ).cycles

        assert run(0) <= run(2) <= run(8)

    def test_vp_between_baseline_and_unit_ipc_bound(self, workload_setup):
        _workload, program, inputs, _image = workload_setup
        baseline = measure_ilp(program, inputs)
        engine = PredictionEngine(program, StridePredictor(), AlwaysClassification())
        predicted = measure_ilp(program, inputs, engine=engine)
        # Unit latency, in-order retire: at most window_size IPC.
        assert predicted.ilp <= IlpConfig().window_size
        assert predicted.cycles <= baseline.cycles


class TestProfileMergeAlgebra:
    def test_merge_is_order_independent(self, workload_setup):
        workload, program, _inputs, _image = workload_setup
        images = [
            collect_profile(program, workload.input_set(index, scale=SCALE))
            for index in range(3)
        ]
        forward = merge_profiles(images)
        backward = merge_profiles(list(reversed(images)))
        assert set(forward.instructions) == set(backward.instructions)
        for address in forward.instructions:
            first = forward.instructions[address]
            second = backward.instructions[address]
            assert (first.executions, first.attempts, first.correct) == (
                second.executions, second.attempts, second.correct,
            )

    def test_merge_with_self_doubles_counts(self, workload_setup):
        _workload, _program, _inputs, image = workload_setup
        doubled = merge_profiles([image, image])
        for address, profile in image.instructions.items():
            assert doubled.instructions[address].executions == 2 * profile.executions
            # Ratios are unchanged.
            assert doubled.instructions[address].accuracy == pytest.approx(
                profile.accuracy
            )


class TestAccuracyMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
            max_size=2,
            unique=True,
        )
    )
    def test_stricter_threshold_tags_subset(self, thresholds):
        # hypothesis + fixtures don't mix; rebuild cheaply at module scope.
        workload = get_workload(WORKLOAD)
        program = workload.compile()
        image = _IMAGE_CACHE.setdefault(
            "image", collect_profile(program, workload.input_set(0, scale=SCALE))
        )
        low, high = sorted(thresholds)
        loose = annotate_program(program, image, AnnotationPolicy(low))
        strict = annotate_program(program, image, AnnotationPolicy(high))
        assert set(strict.directives()) <= set(loose.directives())


_IMAGE_CACHE: dict = {}
