"""Golden-output regression tests for every workload.

Snapshotted at scale 0.04 on input set 0.  Any change to a workload
program, the compiler, or the executor that alters these outputs is a
behavioural change and must be deliberate.  To regenerate after a
deliberate change::

    python -c "from repro.workloads import all_workloads; \
from repro.machine import run_program; \
[print(w.name, run_program(w.compile(), w.input_set(0, scale=0.04)).outputs) \
 for w in all_workloads()]"
"""

import pytest

from repro.machine import run_program
from repro.workloads import get_workload

GOLDEN = {
    "099.go": [0, 4, 0, 277357417],
    "101.tomcatv": [388198.90884557995, 388181.89039673534, 0.7637883353680408],
    "102.swim": [469.250863894754, 469.23997999804504],
    "103.su2cor": [151.3251146442969, 284],
    "104.hydro2d": [479.6438965839334, 477.0510133598887],
    "107.mgrid": [0.0, 11.093982525953152],
    "124.m88ksim": [426696361, 92, 57000026],
    "126.gcc": [7, 6, 10, 3, 564601196],
    "129.compress": [722586328, 907974507, 68],
    "130.li": [67026246, 2963713, 762, 0],
    "132.ijpeg": [271, 1950],
    "134.perl": [3, 4, 200],
    "147.vortex": [243, 6, 507, 141100002],
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_outputs(name):
    workload = get_workload(name)
    result = run_program(workload.compile(), workload.input_set(0, scale=0.04))
    assert result.outputs == GOLDEN[name]
