"""Unit tests for the prediction tables, predictors and FSM classifier."""

from __future__ import annotations

import pytest

from repro.isa import Directive
from repro.predictors import (
    FsmClassifier,
    HybridPredictor,
    LastValuePredictor,
    PredictionTable,
    SaturatingCounter,
    StridePredictor,
)


class TestPredictionTable:
    def test_infinite_table_never_evicts(self):
        table = PredictionTable(entries=None)
        for address in range(10000):
            table.insert(address, address)
        assert len(table) == 10000
        assert table.evictions == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PredictionTable(entries=10, ways=3)  # not a multiple
        with pytest.raises(ValueError):
            PredictionTable(entries=0, ways=2)
        with pytest.raises(ValueError):
            PredictionTable(entries=4, ways=0)

    def test_lru_eviction_within_set(self):
        # 4 entries, 2 ways -> 2 sets; addresses 0,2,4 map to set 0.
        table = PredictionTable(entries=4, ways=2)
        table.insert(0, "a")
        table.insert(2, "b")
        table.lookup(0)          # refresh 0; 2 becomes LRU
        evicted = table.insert(4, "c")
        assert evicted == 2
        assert 0 in table and 4 in table and 2 not in table

    def test_eviction_callback(self):
        table = PredictionTable(entries=2, ways=2)
        victims = []
        table.insert(0, "a")
        table.insert(2, "b")
        table.insert(4, "c", on_evict=victims.append)
        assert victims == [0]

    def test_peek_does_not_touch_lru(self):
        table = PredictionTable(entries=4, ways=2)
        table.insert(0, "a")
        table.insert(2, "b")
        table.peek(0)            # must NOT refresh 0
        evicted = table.insert(4, "c")
        assert evicted == 0

    def test_hit_statistics(self):
        table = PredictionTable(entries=4, ways=2)
        table.insert(1, "x")
        table.lookup(1)
        table.lookup(3)
        assert table.lookups == 2
        assert table.hits == 1

    def test_capacity_respected(self):
        table = PredictionTable(entries=8, ways=2)
        for address in range(100):
            table.insert(address, address)
        assert len(table) <= 8


class TestLastValuePredictor:
    def test_first_access_is_a_miss_that_allocates(self):
        predictor = LastValuePredictor()
        result = predictor.access(5, 10)
        assert not result.hit and result.allocated

    def test_repeated_value_predicted(self):
        predictor = LastValuePredictor()
        predictor.access(5, 10)
        result = predictor.access(5, 10)
        assert result.hit and result.correct
        assert result.predicted_value == 10

    def test_changed_value_mispredicted_then_learned(self):
        predictor = LastValuePredictor()
        predictor.access(5, 10)
        result = predictor.access(5, 20)
        assert result.hit and not result.correct
        result = predictor.access(5, 20)
        assert result.correct

    def test_never_reports_nonzero_stride(self):
        predictor = LastValuePredictor()
        for value in (1, 2, 3, 4):
            result = predictor.access(5, value)
        assert not result.nonzero_stride

    def test_allocate_false_keeps_table_empty(self):
        predictor = LastValuePredictor()
        result = predictor.access(5, 10, allocate=False)
        assert not result.hit and not result.allocated
        assert predictor.lookup_prediction(5) is None


class TestStridePredictor:
    def test_stride_sequence_predicted_from_third_access(self):
        predictor = StridePredictor()
        assert not predictor.access(7, 100).hit      # allocate
        first = predictor.access(7, 110)             # stride still 0
        assert first.hit and not first.correct
        for expected in (120, 130, 140):
            result = predictor.access(7, expected)
            assert result.correct and result.nonzero_stride

    def test_constant_sequence_is_zero_stride(self):
        predictor = StridePredictor()
        predictor.access(7, 5)
        predictor.access(7, 5)
        result = predictor.access(7, 5)
        assert result.correct and not result.nonzero_stride

    def test_stride_relearned_after_change(self):
        predictor = StridePredictor()
        for value in (0, 10, 20):
            predictor.access(7, value)
        result = predictor.access(7, 100)   # breaks the stride
        assert not result.correct
        result = predictor.access(7, 180)   # new stride 80
        assert result.correct

    def test_float_strides(self):
        predictor = StridePredictor()
        for value in (1.0, 1.5, 2.0):
            result = predictor.access(3, value)
        assert result.correct and result.nonzero_stride

    def test_lookup_prediction_is_pure(self):
        predictor = StridePredictor()
        predictor.access(7, 10)
        predictor.access(7, 20)
        assert predictor.lookup_prediction(7) == 30
        assert predictor.lookup_prediction(7) == 30  # unchanged

    def test_degenerates_to_last_value_on_first_hit(self):
        predictor = StridePredictor()
        predictor.access(9, 42)
        result = predictor.access(9, 42)
        assert result.correct  # freshly allocated entries have stride 0


class TestHybridPredictor:
    def test_routes_by_directive(self):
        hybrid = HybridPredictor(stride_entries=None, last_value_entries=None)
        hybrid.access(1, 10, Directive.STRIDE)
        hybrid.access(2, 99, Directive.LAST_VALUE)
        assert 1 in hybrid.stride.table
        assert 1 not in hybrid.last_value.table
        assert 2 in hybrid.last_value.table

    def test_stride_side_predicts_strides(self):
        hybrid = HybridPredictor()
        for value in (0, 7, 14):
            result = hybrid.access(1, value, Directive.STRIDE)
        assert result.correct and result.nonzero_stride

    def test_last_value_side_ignores_strides(self):
        hybrid = HybridPredictor()
        for value in (0, 7, 14):
            result = hybrid.access(1, value, Directive.LAST_VALUE)
        assert not result.correct

    def test_clear_resets_both(self):
        hybrid = HybridPredictor()
        hybrid.access(1, 1, Directive.STRIDE)
        hybrid.access(2, 2, Directive.LAST_VALUE)
        hybrid.clear()
        assert len(hybrid.stride.table) == 0
        assert len(hybrid.last_value.table) == 0


class TestSaturatingCounter:
    def test_saturates_at_both_ends(self):
        counter = SaturatingCounter(bits=2, initial=0)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)


class TestFsmClassifier:
    def test_warmup_then_take(self):
        fsm = FsmClassifier()            # init 1, take at >= 2
        assert not fsm.should_take(5)
        fsm.record(5, True)
        assert fsm.should_take(5)

    def test_mispredictions_push_below_threshold(self):
        fsm = FsmClassifier()
        fsm.record(5, True)
        fsm.record(5, True)              # state 3
        fsm.record(5, False)
        assert fsm.should_take(5)        # state 2, still taking
        fsm.record(5, False)
        assert not fsm.should_take(5)    # state 1

    def test_eviction_resets_state(self):
        fsm = FsmClassifier()
        fsm.record(5, True)
        fsm.record(5, True)
        fsm.on_evict(5)
        assert fsm.state(5) == 1         # back to initial

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FsmClassifier(bits=2, take_threshold=5)
        with pytest.raises(ValueError):
            FsmClassifier(bits=2, take_threshold=0)

    def test_counters_are_per_address(self):
        fsm = FsmClassifier()
        fsm.record(1, True)
        assert fsm.should_take(1)
        assert not fsm.should_take(2)

    def test_evict_then_inspect_then_take(self):
        # state() is a pure peek: probing an evicted address must not
        # resurrect its counter, so the next should_take/record sequence
        # starts from a genuinely fresh warm-up.
        fsm = FsmClassifier()
        fsm.record(5, True)
        fsm.record(5, True)              # state 3
        fsm.on_evict(5)
        assert fsm.state(5) == 1         # reads as initial...
        assert 5 not in fsm._counters    # ...without allocating
        assert not fsm.should_take(5)    # fresh counter, below threshold
        fsm.record(5, True)
        assert fsm.should_take(5)

    def test_state_never_allocates(self):
        fsm = FsmClassifier()
        assert fsm.state(9) == fsm.initial
        assert fsm._counters == {}
