"""Workload-idiom tests: each stand-in must exhibit its SPEC original's
characteristic value behaviour (at tiny scale, so the suite stays fast)."""

from __future__ import annotations

import pytest

from repro.machine import collect_statistics
from repro.predictors import FcmPredictor, LastValuePredictor, StridePredictor
from repro.profiling import collect_profile, collect_profiles
from repro.workloads import get_workload

SCALE = 0.05


def profile_of(name: str, scale: float = SCALE):
    workload = get_workload(name)
    program = workload.compile()
    return program, collect_profile(program, workload.input_set(0, scale=scale))


class TestFootprints:
    def test_gcc_overflows_prediction_table(self):
        workload = get_workload("126.gcc")
        stats = collect_statistics(
            workload.compile(), workload.input_set(0, scale=SCALE)
        )
        assert stats.candidate_footprint > 512

    def test_m88ksim_and_compress_fit_table(self):
        for name in ("124.m88ksim", "129.compress"):
            workload = get_workload(name)
            stats = collect_statistics(
                workload.compile(), workload.input_set(0, scale=SCALE)
            )
            assert stats.candidate_footprint < 512, name

    def test_compress_touches_most_data(self):
        footprints = {}
        for name in ("129.compress", "124.m88ksim", "130.li"):
            workload = get_workload(name)
            stats = collect_statistics(
                workload.compile(), workload.input_set(0, scale=SCALE)
            )
            footprints[name] = stats.data_footprint
        assert footprints["129.compress"] == max(footprints.values())


class TestPredictabilityIdioms:
    def test_ijpeg_is_stride_dominated(self):
        """The DCT kernel's correct predictions are mostly non-zero-stride."""
        _program, image = profile_of("132.ijpeg")
        stride_heavy = sum(
            1
            for profile in image.instructions.values()
            if profile.correct >= 5 and profile.stride_efficiency > 90.0
        )
        zero_stride = sum(
            1
            for profile in image.instructions.values()
            if profile.correct >= 5 and profile.stride_efficiency < 10.0
        )
        assert stride_heavy > 0.5 * zero_stride

    def test_li_is_fcm_friendly(self):
        """Pointer-chasing interpreters repeat value *sequences*, not
        strides: FCM must beat the stride predictor on 130.li."""
        workload = get_workload("130.li")
        program = workload.compile()
        images = collect_profiles(
            program,
            workload.input_set(0, scale=SCALE),
            predictors={"stride": StridePredictor(), "fcm": FcmPredictor(order=2)},
        )

        def total_correct(image):
            return sum(p.correct for p in image.instructions.values())

        assert total_correct(images["fcm"]) > total_correct(images["stride"])

    def test_stride_beats_last_value_everywhere(self):
        """The stride predictor subsumes last-value (zero strides), so it
        must win or tie on every benchmark."""
        for name in ("099.go", "129.compress", "132.ijpeg"):
            workload = get_workload(name)
            program = workload.compile()
            images = collect_profiles(
                program,
                workload.input_set(0, scale=SCALE),
                predictors={
                    "stride": StridePredictor(),
                    "lv": LastValuePredictor(),
                },
            )
            stride_correct = sum(
                p.correct for p in images["stride"].instructions.values()
            )
            lv_correct = sum(p.correct for p in images["lv"].instructions.values())
            assert stride_correct >= lv_correct, name

    def test_su2cor_monte_carlo_phase_less_predictable_than_init(self):
        """The Metropolis sweeps (phase 2, LCG-driven updates) must be
        less predictable than the regular input/measurement loops of the
        initialization phase."""
        from repro.profiling import collect_phase_profiles

        workload = get_workload("103.su2cor")
        program = workload.compile()
        images = collect_phase_profiles(program, workload.input_set(0, scale=SCALE))

        def overall(image):
            attempts = sum(p.attempts for p in image.instructions.values())
            correct = sum(p.correct for p in image.instructions.values())
            return correct / attempts if attempts else 0.0

        assert overall(images[2]) < overall(images[1])

    def test_m88ksim_bookkeeping_is_highly_predictable(self):
        """The interpreter's counters/statistics give m88ksim a large set
        of near-perfectly-predictable instructions."""
        _program, image = profile_of("124.m88ksim")
        near_perfect = sum(
            1
            for profile in image.instructions.values()
            if profile.attempts >= 10 and profile.accuracy > 95.0
        )
        assert near_perfect > 20


class TestBranchBehaviour:
    @pytest.mark.parametrize("name", ["099.go", "126.gcc", "134.perl"])
    def test_control_heavy_benchmarks_have_many_branches(self, name):
        from repro.isa import Category

        workload = get_workload(name)
        stats = collect_statistics(
            workload.compile(), workload.input_set(0, scale=SCALE)
        )
        assert stats.category_fraction(Category.BRANCH) > 5.0
