"""Property suite for the grammar-driven workload corpus generator."""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.lang import check_source
from repro.machine import run_program
from repro.workloads import TEST_INDEX, WorkloadRegistry
from repro.workloads.corpus import (
    DEFAULT_MIX,
    IDIOM_KINDS,
    IdiomMix,
    corpus_workload,
    generate_corpus,
    opcode_histogram,
    parse_mix,
    register_corpus,
)

RUN_BUDGET = 200_000


def _fingerprint(seed: int, count: int) -> list:
    """Everything that must be reproducible: sources and all input sets."""
    out = []
    for workload in generate_corpus(seed, count):
        sets = [workload.input_set(index) for index in range(TEST_INDEX + 1)]
        out.append((workload.name, workload.suite, workload.source, sets))
    return out


class TestDeterminism:
    def test_same_seed_identical(self):
        assert _fingerprint(1997, 6) == _fingerprint(1997, 6)

    def test_different_seeds_differ(self):
        first = [w.source for w in generate_corpus(1, 4)]
        second = [w.source for w in generate_corpus(2, 4)]
        assert first != second

    def test_slice_stable_under_count(self):
        small = generate_corpus(1997, 5)
        large = generate_corpus(1997, 8)
        for a, b in zip(small, large):
            assert a.name == b.name
            assert a.source == b.source
            assert a.test_inputs() == b.test_inputs()

    def test_hash_seed_independent(self):
        # The real property: byte-identical corpora across *processes*
        # with different PYTHONHASHSEED values.
        script = (
            "import hashlib, sys\n"
            "from repro.workloads import TEST_INDEX\n"
            "from repro.workloads.corpus import generate_corpus\n"
            "digest = hashlib.sha256()\n"
            "for w in generate_corpus(1997, 6):\n"
            "    digest.update(w.source.encode())\n"
            "    for i in range(TEST_INDEX + 1):\n"
            "        digest.update(repr(w.input_set(i)).encode())\n"
            "print(digest.hexdigest())\n"
        )
        digests = set()
        for hash_seed in ("0", "1", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
                check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1


class TestGeneratedPrograms:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_compiles_and_terminates(self, seed):
        workload = corpus_workload(seed)
        check_source(workload.source)  # front half accepts it
        program = workload.compile()
        for index in range(TEST_INDEX + 1):
            result = run_program(
                program,
                inputs=workload.input_set(index),
                max_instructions=RUN_BUDGET,
            )
            assert result.instruction_count > 0

    def test_default_corpus_has_candidates(self):
        for workload in generate_corpus(1997, 6):
            program = workload.compile()
            assert program.candidate_addresses

    def test_training_and_test_inputs_differ(self):
        workload = generate_corpus(1997, 6)[0]
        sets = [workload.input_set(index) for index in range(TEST_INDEX + 1)]
        # The iteration count is shared; the drawn values must vary
        # across at least some of the six sets.
        assert len({tuple(s) for s in sets}) > 1


class TestIdiomMix:
    def test_knobs_change_opcode_histogram(self):
        stride_only = IdiomMix(stride=1, table=0, chain=0, mixed=0)
        mixed_only = IdiomMix(stride=0, table=0, chain=0, mixed=1)
        histogram_a = opcode_histogram(
            corpus_workload(1997, stride_only).compile()
        )
        histogram_b = opcode_histogram(
            corpus_workload(1997, mixed_only).compile()
        )
        assert histogram_a != histogram_b
        # mixed emits FP arithmetic; stride-only must not.
        assert not any(key.startswith("f") for key in histogram_a)

    def test_mixed_free_corpus_is_all_int(self):
        mix = IdiomMix(stride=1, table=1, chain=1, mixed=0)
        assert all(
            workload.suite == "int"
            for workload in generate_corpus(1997, 10, mix)
        )

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            IdiomMix(stride=-1)
        with pytest.raises(ValueError):
            IdiomMix(stride=0, table=0, chain=0, mixed=0)

    def test_parse_mix(self):
        assert parse_mix("stride=2,table=0") == IdiomMix(
            stride=2, table=0, chain=1, mixed=1
        )
        assert parse_mix("") == DEFAULT_MIX
        with pytest.raises(ValueError):
            parse_mix("bogus=1")
        with pytest.raises(ValueError):
            parse_mix("stride")
        with pytest.raises(ValueError):
            parse_mix("stride=lots")

    def test_idiom_kinds_cover_mix_fields(self):
        assert set(IDIOM_KINDS) == {
            field for field, _ in DEFAULT_MIX.weights()
        }


class TestRegistry:
    def test_register_corpus_in_private_registry(self):
        registry = WorkloadRegistry()
        workloads = register_corpus(1997, 4, registry=registry)
        assert registry.names() == sorted(w.name for w in workloads)
        fetched = registry.get(workloads[0].name)
        assert fetched.source == workloads[0].source

    def test_duplicate_registration_rejected(self):
        registry = WorkloadRegistry()
        register_corpus(1997, 2, registry=registry)
        with pytest.raises(ValueError):
            register_corpus(1997, 2, registry=registry)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(1997, -1)


class TestCorpusCli:
    def test_corpus_command_writes_deterministic_files(self, tmp_path, capsys):
        first = tmp_path / "a"
        second = tmp_path / "b"
        for out_dir in (first, second):
            code = cli_main(
                [
                    "corpus",
                    "--seed",
                    "1997",
                    "--count",
                    "3",
                    "--out-dir",
                    str(out_dir),
                    "--manifest",
                    str(out_dir / "manifest.json"),
                ]
            )
            assert code == 0
        names = sorted(p.name for p in first.iterdir())
        assert sorted(p.name for p in second.iterdir()) == names
        # 3 workloads x (.mc + .asm + 6 input sets) + manifest
        assert len(names) == 3 * 8 + 1
        for name in names:
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_corpus_command_bad_mix(self, capsys):
        assert cli_main(["corpus", "--count", "1", "--mix", "bogus=1"]) == 2
