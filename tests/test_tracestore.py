"""Differential tests for the trace store and the batched fast paths.

The contract under test: every way of obtaining a trace — record-by-record
execution, columnar batches, capture into a :class:`TraceStore`, replay
from memory, replay from disk — yields the *same* record stream, and every
batched consumer (profiler, prediction simulator, shared probe groups)
produces results bit-identical to the record-at-a-time reference path.
"""

from __future__ import annotations

import pytest

from repro.core.schemes import (
    AlwaysClassification,
    HardwareClassification,
    ProbeScheme,
    ProfileClassification,
)
from repro.core.simulate import PredictionEngine, simulate_prediction_many
from repro.isa import Directive, assemble
from repro.machine import (
    DivisionByZero,
    InstructionBudgetExceeded,
    PackedTrace,
    TraceStore,
    inputs_digest,
    program_digest,
    run_program,
    trace_key,
    trace_program,
)
from repro.telemetry import Telemetry, use_registry
from repro.predictors import LastValuePredictor, StridePredictor
from repro.profiling import collect_profiles

LOOP_ASM = """
.text
    li r1, 0
    li r2, 40
    in r4
loop:
    addi r1, r1, 1
    add r3, r1, r4
    mul r5, r3, r3
    st r5, gp, 8
    ld r6, gp, 8
    slt r7, r1, r2
    bnez r7, loop
    out r5
    halt
"""

FLOAT_ASM = """
.text
    fli r1, 1.5
    fin r2
    fli r4, 0.5
    li r5, 0
    li r6, 12
loop:
    fmul r3, r1, r2
    fadd r1, r3, r4
    addi r5, r5, 1
    slt r7, r5, r6
    bnez r7, loop
    out r1
    halt
"""

BIGINT_ASM = """
.text
    li r1, 1000003
    li r2, 0
    li r3, 6
loop:
    mul r1, r1, r1
    addi r2, r2, 1
    slt r4, r2, r3
    bnez r4, loop
    out r2
    halt
"""

DIVZERO_ASM = """
.text
    li r1, 10
    li r2, 2
    div r3, r1, r2
    li r2, 0
    div r3, r1, r2
    halt
"""


def records_of(batches):
    return [record for batch in batches for record in batch.records()]


def as_tuples(records):
    return [(r.address, r.value, r.phase, r.mem_address) for r in records]


class TestDigests:
    def test_directives_do_not_change_the_key(self):
        """Annotated binaries replay the base program's trace: the machine
        never reads directives, so they are excluded from the digest."""
        program = assemble(LOOP_ASM)
        address = sorted(program.candidate_addresses)[0]
        annotated = program.with_directives({address: Directive.STRIDE})
        assert annotated.directives() != program.directives()
        assert program_digest(annotated) == program_digest(program)
        assert trace_key(annotated, [3], 1000) == trace_key(program, [3], 1000)

    def test_distinct_executions_get_distinct_keys(self):
        program = assemble(LOOP_ASM)
        other = assemble(FLOAT_ASM)
        base = trace_key(program, [3], 1000)
        assert trace_key(program, [4], 1000) != base
        assert trace_key(program, [3], 999) != base
        assert trace_key(program, [3], None) != base
        assert trace_key(other, [3], 1000) != base

    def test_inputs_digest_is_type_exact(self):
        # 1 and 1.0 execute differently through cvt/fp ops; the digest
        # must not conflate them the way hash(1) == hash(1.0) would.
        assert inputs_digest([1]) != inputs_digest([1.0])


class TestCaptureReplayDifferential:
    def test_capture_memory_replay_and_disk_replay_are_identical(self, tmp_path):
        program = assemble(LOOP_ASM)
        fresh = as_tuples(trace_program(program, inputs=[3]))

        store = TraceStore(tmp_path)
        captured = as_tuples(records_of(store.batches(program, [3])))
        replayed = as_tuples(records_of(store.batches(program, [3])))
        # A brand-new store over the same directory must replay from disk.
        disk = as_tuples(records_of(TraceStore(tmp_path).batches(program, [3])))

        assert captured == fresh
        assert replayed == fresh
        assert disk == fresh

    def test_float_and_bigint_values_round_trip(self):
        for asm in (FLOAT_ASM, BIGINT_ASM):
            program = assemble(asm)
            inputs = [2.25] if asm is FLOAT_ASM else []
            fresh = as_tuples(trace_program(program, inputs=inputs))
            store = TraceStore(None)
            list(store.batches(program, inputs))
            replayed = as_tuples(records_of(store.batches(program, inputs)))
            assert replayed == fresh
            # Types too: 2.0 must come back float, not int.
            for (_, value, _, _), (_, fresh_value, _, _) in zip(replayed, fresh):
                assert type(value) is type(fresh_value)

    def test_stored_summary_matches_fresh_execution(self):
        """Outputs, instruction counts and telemetry agree with a fresh run."""
        program = assemble(LOOP_ASM)
        fresh = run_program(program, inputs=[3])

        registry = Telemetry()
        store = TraceStore(None)
        with use_registry(registry):
            list(store.batches(program, [3]))   # capture: real execution
            list(store.batches(program, [3]))   # replay: no execution
        packed = store.fetch(program, [3])
        assert packed.outputs == fresh.outputs
        assert packed.instruction_count == fresh.instruction_count
        assert packed.halted is fresh.halted

        counters = registry.snapshot()["counters"]
        assert counters["machine.instructions"] == fresh.instruction_count
        assert counters["machine.trace.captured_records"] == fresh.instruction_count
        assert counters["machine.trace.replayed_records"] == fresh.instruction_count
        assert counters["machine.trace.captures"] == 1
        assert counters["machine.trace.replays"] == 1

    def test_packed_trace_bytes_round_trip(self, tmp_path):
        program = assemble(FLOAT_ASM)
        store = TraceStore(None)
        list(store.batches(program, [2.25]))
        packed = store.fetch(program, [2.25])
        assert packed is not None
        clone = PackedTrace.from_bytes(packed.to_bytes())
        assert as_tuples(records_of(clone.replay(program))) == as_tuples(
            records_of(packed.replay(program))
        )


class TestErrorReplay:
    @pytest.mark.parametrize(
        "asm, inputs, budget, error_type",
        [
            (LOOP_ASM, [3], 50, InstructionBudgetExceeded),
            (DIVZERO_ASM, [], None, DivisionByZero),
        ],
    )
    def test_errored_traces_replay_prefix_and_error(
        self, asm, inputs, budget, error_type
    ):
        program = assemble(asm)

        def drain(batches):
            produced = []
            with pytest.raises(error_type) as excinfo:
                for batch in batches:
                    produced.extend(batch.records())
            return as_tuples(produced), str(excinfo.value)

        fresh_records, fresh_message = drain(
            trace_batches_via_executor(program, inputs, budget)
        )
        store = TraceStore(None)
        captured_records, captured_message = drain(
            store.batches(program, inputs, max_instructions=budget)
        )
        replayed_records, replayed_message = drain(
            store.batches(program, inputs, max_instructions=budget)
        )

        assert captured_records == fresh_records
        assert replayed_records == fresh_records
        assert captured_message == fresh_message
        assert replayed_message == fresh_message

    def test_abandoned_capture_commits_nothing(self):
        program = assemble(LOOP_ASM)
        store = TraceStore(None)
        batches = store.batches(program, [3], chunk_size=16)
        next(batches)
        batches.close()
        assert store.fetch(program, [3]) is None
        # The next request re-executes and, completing cleanly, commits.
        complete = as_tuples(records_of(store.batches(program, [3], chunk_size=16)))
        assert store.fetch(program, [3]) is not None
        assert complete == as_tuples(trace_program(program, inputs=[3]))


def trace_batches_via_executor(program, inputs, budget):
    from repro.machine import Executor

    return Executor(program, inputs=inputs, max_instructions=budget).run_batches()


class TestStoreEviction:
    def test_memory_lru_evicts_oldest(self):
        program = assemble(LOOP_ASM)
        store = TraceStore(None, max_entries=2)
        for value in (1, 2, 3):
            list(store.batches(program, [value]))
        assert store.fetch(program, [1]) is None
        assert store.fetch(program, [2]) is not None
        assert store.fetch(program, [3]) is not None

    def test_disk_backing_survives_memory_eviction(self, tmp_path):
        program = assemble(LOOP_ASM)
        store = TraceStore(tmp_path, max_entries=1)
        fresh = as_tuples(trace_program(program, inputs=[1]))
        list(store.batches(program, [1]))
        list(store.batches(program, [2]))  # evicts [1] from memory
        replayed = as_tuples(records_of(store.batches(program, [1])))
        assert replayed == fresh


def classification_grid(program, annotated):
    """The Figure 5.1-shaped engine grid: FSM probe + static thresholds."""
    engines = {
        "always": PredictionEngine(
            program, predictor=StridePredictor(), scheme=AlwaysClassification()
        ),
        "fsm": PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=ProbeScheme(HardwareClassification()),
        ),
    }
    for label in ("p1", "p2"):
        engines[label] = PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=ProbeScheme(ProfileClassification(annotated)),
        )
    return engines


def stats_fingerprint(stats):
    totals = (
        stats.executions,
        stats.attempts,
        stats.would_correct,
        stats.taken,
        stats.taken_correct,
        stats.allocations,
        stats.evictions,
    )
    per_address = {
        address: (
            entry.executions,
            entry.attempts,
            entry.would_correct,
            entry.taken,
            entry.taken_correct,
            entry.allocations,
        )
        for address, entry in stats.per_address.items()
    }
    return totals, per_address


class TestBatchedConsumerDifferential:
    def setup_method(self):
        self.program = assemble(LOOP_ASM)
        address = sorted(self.program.candidate_addresses)[0]
        self.annotated = self.program.with_directives({address: Directive.STRIDE})

    def run_grid(self, monkeypatch=None, shared=True):
        if monkeypatch is not None:
            import repro.core.simulate as simulate

            monkeypatch.setattr(simulate, "_fast_stride_consumer", lambda engine: None)
        engines = classification_grid(self.program, self.annotated)
        if shared:
            results = simulate_prediction_many(self.program, [3], engines)
        else:
            results = {
                label: simulate_prediction_many(self.program, [3], {label: engine})[
                    label
                ]
                for label, engine in engines.items()
            }
        return {label: stats_fingerprint(stats) for label, stats in results.items()}

    def test_fast_path_matches_step_path(self, monkeypatch):
        fast = self.run_grid()
        with monkeypatch.context() as patch:
            slow = self.run_grid(monkeypatch=patch)
        assert fast == slow

    def test_shared_probe_group_matches_independent_runs(self):
        assert self.run_grid(shared=True) == self.run_grid(shared=False)

    def test_profiler_fast_path_matches_record_path(self, monkeypatch):
        import repro.profiling.collector as collector

        def profiles():
            return collect_profiles(
                self.program,
                [3],
                predictors={"S": StridePredictor(), "L": LastValuePredictor()},
            )

        fast = profiles()
        monkeypatch.setattr(collector, "_fast_stride_profiler", lambda *args: None)
        slow = profiles()
        for name in fast:
            fast_instructions = fast[name].instructions
            slow_instructions = slow[name].instructions
            assert set(fast_instructions) == set(slow_instructions)
            for address, entry in fast_instructions.items():
                other = slow_instructions[address]
                assert (
                    entry.executions,
                    entry.attempts,
                    entry.correct,
                    entry.nonzero_stride_correct,
                ) == (
                    other.executions,
                    other.attempts,
                    other.correct,
                    other.nonzero_stride_correct,
                )

    def test_simulation_through_store_matches_direct_execution(self):
        store = TraceStore(None)
        engines_direct = classification_grid(self.program, self.annotated)
        engines_stored = classification_grid(self.program, self.annotated)
        direct = simulate_prediction_many(self.program, [3], engines_direct)
        # Capture pass, then a replay pass — both must match direct.
        simulate_prediction_many(
            self.program, [3], classification_grid(self.program, self.annotated),
            store=store,
        )
        stored = simulate_prediction_many(
            self.program, [3], engines_stored, store=store
        )
        assert {label: stats_fingerprint(s) for label, s in direct.items()} == {
            label: stats_fingerprint(s) for label, s in stored.items()
        }
