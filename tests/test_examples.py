"""Every example must run end to end (at reduced scale where supported)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(monkeypatch, capsys, name: str, argv: list) -> str:
    module = load_example(name)
    monkeypatch.setattr(sys, "argv", [f"{name}.py"] + argv)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_examples_directory_contents(self):
        names = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart" in names
        assert len(names) >= 3

    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart", [])
        assert "annotation report" in out
        assert "profile-guided" in out

    def test_custom_workload(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "custom_workload", [])
        assert "repro-profile-image v1" in out
        assert "<-- directive" in out

    @pytest.mark.slow
    def test_input_sensitivity(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "input_sensitivity", ["129.compress", "0.05"]
        )
        assert "M(V)max" in out and "M(S)avg" in out

    @pytest.mark.slow
    def test_hybrid_predictor(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "hybrid_predictor", ["129.compress", "0.05"]
        )
        assert "hybrid 128s + 384lv" in out

    @pytest.mark.slow
    def test_spec_study(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "spec_study", ["129.compress", "0.05"])
        assert "abstract machine ILP" in out
        assert "saturating counters" in out

    @pytest.mark.slow
    def test_critical_path(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "critical_path", ["129.compress", "70"])
        assert "mean critical path" in out
        assert "shorten the most" in out
