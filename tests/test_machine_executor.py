"""Unit tests for the functional simulator."""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.machine import (
    DivisionByZero,
    ExecutionError,
    Executor,
    InputExhausted,
    InstructionBudgetExceeded,
    InvalidMemoryAccess,
    candidate_records,
    run_program,
    trace_program,
)


def run_asm(body: str, inputs=(), **kwargs):
    program = assemble(f".text\n{body}\n halt\n")
    return run_program(program, inputs=inputs, **kwargs)


class TestIntegerAlu:
    @pytest.mark.parametrize(
        "body, expected",
        [
            ("li r1, 6\n li r2, 7\n mul r3, r1, r2\n out r3", 42),
            ("li r1, 7\n li r2, 2\n div r3, r1, r2\n out r3", 3),
            ("li r1, -7\n li r2, 2\n div r3, r1, r2\n out r3", -3),
            ("li r1, 7\n li r2, -2\n div r3, r1, r2\n out r3", -3),
            ("li r1, -7\n li r2, 2\n mod r3, r1, r2\n out r3", -1),
            ("li r1, 7\n li r2, -2\n mod r3, r1, r2\n out r3", 1),
            ("li r1, 12\n andi r2, r1, 10\n out r2", 8),
            ("li r1, 12\n ori r2, r1, 3\n out r2", 15),
            ("li r1, 12\n xori r2, r1, 10\n out r2", 6),
            ("li r1, 3\n shli r2, r1, 4\n out r2", 48),
            ("li r1, -16\n shri r2, r1, 2\n out r2", -4),
            ("li r1, 5\n slti r2, r1, 6\n out r2", 1),
            ("li r1, 5\n slei r2, r1, 5\n out r2", 1),
            ("li r1, 5\n seqi r2, r1, 4\n out r2", 0),
            ("li r1, 5\n snei r2, r1, 4\n out r2", 1),
            ("li r1, 5\n neg r2, r1\n out r2", -5),
            ("li r1, 0\n not r2, r1\n out r2", 1),
            ("li r1, 3\n not r2, r1\n out r2", 0),
        ],
    )
    def test_arithmetic(self, body, expected):
        assert run_asm(body).outputs == [expected]

    def test_c_division_matches_paper_semantics(self):
        # Truncation toward zero for every sign combination.
        for a, b in [(7, 3), (-7, 3), (7, -3), (-7, -3)]:
            result = run_asm(f"li r1, {a}\n li r2, {b}\n div r3, r1, r2\n out r3")
            expected = abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)
            assert result.outputs == [expected]

    def test_division_by_zero_raises(self):
        with pytest.raises(DivisionByZero):
            run_asm("li r1, 1\n li r2, 0\n div r3, r1, r2")
        with pytest.raises(DivisionByZero):
            run_asm("li r1, 1\n li r2, 0\n mod r3, r1, r2")

    def test_r0_is_hardwired_zero(self):
        result = run_asm("li r0, 99\n out r0")
        assert result.outputs == [0]


class TestFloatingPoint:
    def test_fp_arithmetic(self):
        result = run_asm(
            "fli r1, 1.5\n fli r2, 2.0\n fmul r3, r1, r2\n out r3"
        )
        assert result.outputs == [3.0]

    def test_fp_division_by_zero_raises(self):
        with pytest.raises(DivisionByZero):
            run_asm("fli r1, 1.0\n fli r2, 0.0\n fdiv r3, r1, r2")

    def test_conversions(self):
        result = run_asm("li r1, 3\n cvtif r2, r1\n out r2")
        assert result.outputs == [3.0]
        result = run_asm("fli r1, -2.9\n cvtfi r2, r1\n out r2")
        assert result.outputs == [-2]  # truncation toward zero

    def test_fp_compare(self):
        result = run_asm("fli r1, 1.5\n fli r2, 2.5\n fslt r3, r1, r2\n out r3")
        assert result.outputs == [1]


class TestMemory:
    def test_store_load(self):
        result = run_asm("li r1, 123\n st r1, gp, 4\n ld r2, gp, 4\n out r2")
        assert result.outputs == [123]

    def test_uninitialized_memory_reads_zero(self):
        assert run_asm("ld r1, gp, 100\n out r1").outputs == [0]

    def test_data_segment_preloaded(self):
        program = assemble(".data\nv: 55\n.text\n ld r1, gp, 0\n out r1\n halt\n")
        assert run_program(program).outputs == [55]

    def test_negative_address_raises(self):
        with pytest.raises(InvalidMemoryAccess):
            run_asm("li r1, -5\n ld r2, r1, 0")
        with pytest.raises(InvalidMemoryAccess):
            run_asm("li r1, -5\n st r1, r1, 0")


class TestControlFlow:
    def test_loop_terminates(self, count_program):
        result = run_program(count_program)
        assert result.outputs == [10]
        assert result.halted

    def test_call_and_return(self):
        program = assemble(
            """
.text
    call fn
    out r24
    halt
fn:
    li r24, 77
    jr ra
"""
        )
        assert run_program(program).outputs == [77]

    def test_falling_off_code_raises(self):
        program = assemble(".text\n nop\n")
        with pytest.raises(ExecutionError):
            run_program(program)

    def test_budget_exceeded(self):
        program = assemble(".text\nspin:\n jmp spin\n halt\n")
        with pytest.raises(InstructionBudgetExceeded):
            run_program(program, max_instructions=1000)

    def test_none_budget_means_unbounded(self):
        """Regression: ``max_instructions=None`` used to silently become
        the 50M default budget instead of meaning "no budget"."""
        executor = Executor(assemble(".text\n halt\n"), max_instructions=None)
        assert executor.max_instructions is None

        # A loop running past an explicit budget still completes under None.
        program = assemble(
            """
.text
    li r1, 0
    li r2, 400
loop:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, loop
    out r1
    halt
"""
        )
        with pytest.raises(InstructionBudgetExceeded):
            run_program(program, max_instructions=100)
        result = run_program(program, max_instructions=None)
        assert result.outputs == [400]
        assert result.instruction_count > 100


class TestEnvironment:
    def test_inputs_consumed_in_order(self):
        result = run_asm("in r1\n in r2\n sub r3, r1, r2\n out r3", inputs=[10, 4])
        assert result.outputs == [6]

    def test_fin_coerces_float(self):
        result = run_asm("fin r1\n out r1", inputs=[3])
        assert result.outputs == [3.0]

    def test_in_coerces_int(self):
        result = run_asm("in r1\n out r1", inputs=[3.7])
        assert result.outputs == [3]

    def test_exhausted_inputs_raise(self):
        with pytest.raises(InputExhausted):
            run_asm("in r1", inputs=[])

    def test_phase_changes_trace_phase(self):
        program = assemble(".text\n li r1, 1\n phase 2\n li r2, 2\n halt\n")
        records = list(trace_program(program))
        assert records[0].phase == 0
        assert records[-2].phase == 2


class TestTraces:
    def test_one_record_per_retired_instruction(self, count_program):
        records = list(trace_program(count_program))
        executor = Executor(count_program)
        executor.run_to_completion()
        assert len(records) == executor.instruction_count

    def test_values_recorded_for_writers(self, count_program):
        records = list(trace_program(count_program))
        li_record = records[0]
        assert li_record.value == 0
        addi_values = [
            r.value for r in records if count_program[r.address].opcode.value == "addi"
        ]
        assert addi_values == list(range(1, 11))

    def test_mem_address_recorded(self, count_program):
        records = list(trace_program(count_program))
        stores = [r for r in records if count_program[r.address].opcode.value == "st"]
        assert all(r.mem_address == 0 for r in stores)

    def test_candidate_filter(self, count_program):
        records = list(trace_program(count_program))
        candidates = list(candidate_records(count_program, records))
        assert 0 < len(candidates) < len(records)
        assert all(
            count_program[r.address].is_prediction_candidate for r in candidates
        )

    def test_trace_is_deterministic(self, count_program):
        first = [(r.address, r.value) for r in trace_program(count_program)]
        second = [(r.address, r.value) for r in trace_program(count_program)]
        assert first == second
