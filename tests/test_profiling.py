"""Unit tests for profile collection, the file format, merging and metrics."""

from __future__ import annotations

import math

import pytest

from repro.isa import Category, assemble
from repro.lang import compile_source
from repro.predictors import LastValuePredictor, StridePredictor
from repro.profiling import (
    InstructionProfile,
    ProfileFormatError,
    ProfileImage,
    accuracy_vectors,
    average_distance_metric,
    collect_profile,
    collect_profiles,
    common_addresses,
    dumps_profile,
    interval_histogram,
    interval_percentages,
    loads_profile,
    max_distance_metric,
    merge_profiles,
    read_profile,
    save_profile,
    stride_efficiency_vectors,
)

STRIDE_LOOP = """
.text
    li r1, 0
    li r2, 50
loop:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, loop
    halt
"""


class TestCollector:
    def test_loop_counter_profiles_as_stride(self):
        program = assemble(STRIDE_LOOP)
        image = collect_profile(program)
        addi_address = 2
        profile = image.instructions[addi_address]
        # 50 executions; first allocates, second trains the stride, the
        # remaining 48 predict correctly with a non-zero stride.
        assert profile.executions == 50
        assert profile.attempts == 49
        assert profile.correct == 48
        assert profile.nonzero_stride_correct == 48
        assert profile.accuracy == pytest.approx(100.0 * 48 / 49)
        assert profile.stride_efficiency == 100.0

    def test_last_value_predictor_misses_strides(self):
        program = assemble(STRIDE_LOOP)
        image = collect_profile(program, predictor=LastValuePredictor())
        profile = image.instructions[2]
        assert profile.correct == 0

    def test_multi_predictor_single_run(self):
        program = assemble(STRIDE_LOOP)
        images = collect_profiles(
            program,
            predictors={"S": StridePredictor(), "L": LastValuePredictor()},
        )
        assert images["S"].instructions[2].correct > 0
        assert images["L"].instructions[2].correct == 0

    def test_group_stats_by_category(self):
        source = """
        float f;
        void main() {
            int i;
            for (i = 0; i < 10; i = i + 1) { f = f + 1.5; }
            out(f);
        }
        """
        program = compile_source(source)
        image = collect_profile(program)
        categories = {category for category, _phase in image.groups}
        assert Category.INT_ALU in categories
        assert Category.FP_ALU in categories

    def test_phase_tracking(self):
        source = """
        void main() {
            int a;
            phase(1);
            a = in() * 2;
            phase(2);
            out(a + 1);
        }
        """
        program = compile_source(source)
        image = collect_profile(program, inputs=[5])
        phases = {phase for _category, phase in image.groups}
        assert 1 in phases and 2 in phases

    def test_only_candidates_profiled(self, count_program):
        image = collect_profile(count_program)
        for address in image.instructions:
            assert count_program[address].is_prediction_candidate


class TestImageIo:
    def make_image(self):
        image = ProfileImage("prog", run_label="r0")
        image.instructions[3] = InstructionProfile(3, 100, 99, 90, 45)
        image.instructions[7] = InstructionProfile(7, 10, 9, 0, 0)
        return image

    def test_roundtrip(self, tmp_path):
        image = self.make_image()
        path = tmp_path / "image.profile"
        save_profile(image, path)
        loaded = read_profile(path)
        assert loaded.program_name == "prog"
        assert loaded.run_label == "r0"
        assert loaded.instructions[3].accuracy == image.instructions[3].accuracy
        assert loaded.instructions[7].attempts == 9

    def test_string_roundtrip(self):
        image = self.make_image()
        loaded = loads_profile(dumps_profile(image))
        assert set(loaded.instructions) == {3, 7}

    def test_bad_magic_rejected(self):
        with pytest.raises(ProfileFormatError):
            loads_profile("not a profile\n")

    def test_malformed_row_rejected(self):
        text = "# repro-profile-image v1\n1 2 3\n"
        with pytest.raises(ProfileFormatError):
            loads_profile(text)

    def test_inconsistent_counts_rejected(self):
        text = "# repro-profile-image v1\n1 5 10 3 0\n"  # attempts > executions
        with pytest.raises(ProfileFormatError):
            loads_profile(text)


class TestMerge:
    def image_with(self, entries):
        image = ProfileImage("p")
        for address, counts in entries.items():
            image.instructions[address] = InstructionProfile(address, *counts)
        return image

    def test_counts_sum(self):
        first = self.image_with({1: (10, 9, 5, 2)})
        second = self.image_with({1: (20, 19, 15, 4)})
        merged = merge_profiles([first, second])
        profile = merged.instructions[1]
        assert (profile.executions, profile.attempts) == (30, 28)
        assert (profile.correct, profile.nonzero_stride_correct) == (20, 6)

    def test_union_by_default(self):
        first = self.image_with({1: (1, 0, 0, 0)})
        second = self.image_with({2: (1, 0, 0, 0)})
        merged = merge_profiles([first, second])
        assert set(merged.instructions) == {1, 2}

    def test_require_common_drops_partial(self):
        first = self.image_with({1: (1, 0, 0, 0), 2: (1, 0, 0, 0)})
        second = self.image_with({2: (1, 0, 0, 0)})
        merged = merge_profiles([first, second], require_common=True)
        assert set(merged.instructions) == {2}

    def test_common_addresses(self):
        first = self.image_with({1: (1, 0, 0, 0), 2: (1, 0, 0, 0)})
        second = self.image_with({2: (1, 0, 0, 0), 3: (1, 0, 0, 0)})
        assert common_addresses([first, second]) == [2]

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_profiles([])


class TestMetrics:
    def test_max_distance_definition(self):
        vectors = [[0.0, 50.0], [10.0, 70.0], [4.0, 90.0]]
        assert max_distance_metric(vectors) == [10.0, 40.0]

    def test_average_distance_definition(self):
        vectors = [[0.0], [6.0], [12.0]]
        # pairwise distances 6, 12, 6 -> mean 8
        assert average_distance_metric(vectors) == [8.0]

    def test_identical_vectors_give_zero(self):
        vectors = [[5.0, 10.0]] * 4
        assert max_distance_metric(vectors) == [0.0, 0.0]
        assert average_distance_metric(vectors) == [0.0, 0.0]

    def test_max_at_least_average(self):
        vectors = [[1.0, 20.0, 33.0], [9.0, 80.0, 35.0], [5.0, 50.0, 37.0]]
        for maximum, average in zip(
            max_distance_metric(vectors), average_distance_metric(vectors)
        ):
            assert maximum >= average

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_distance_metric([[1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            average_distance_metric([[1.0]])

    def test_histogram_intervals(self):
        values = [0.0, 10.0, 10.1, 20.0, 95.0, 100.0]
        counts = interval_histogram(values)
        assert counts[0] == 2          # 0 and 10 in [0,10]
        assert counts[1] == 2          # 10.1 and 20 in (10,20]
        assert counts[9] == 2          # 95 and 100 in (90,100]
        assert sum(counts) == len(values)

    def test_histogram_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            interval_histogram([101.0])
        with pytest.raises(ValueError):
            interval_histogram([-0.1])

    def test_percentages_sum_to_100(self):
        values = [5.0, 15.0, 25.0, 95.0]
        assert math.isclose(sum(interval_percentages(values)), 100.0)

    def test_empty_percentages(self):
        assert interval_percentages([]) == [0.0] * 10

    def test_vectors_use_common_instructions_only(self):
        first = ProfileImage("p")
        second = ProfileImage("p")
        first.instructions[1] = InstructionProfile(1, 10, 10, 10, 0)
        first.instructions[2] = InstructionProfile(2, 10, 10, 5, 5)
        second.instructions[2] = InstructionProfile(2, 10, 10, 5, 0)
        vectors = accuracy_vectors([first, second])
        assert vectors == [[50.0], [50.0]]
        stride_vectors = stride_efficiency_vectors([first, second])
        assert stride_vectors == [[100.0], [0.0]]


class TestPhaseProfiles:
    def test_phase_split_images(self):
        from repro.lang import compile_source
        from repro.profiling import collect_phase_profiles

        source = """
        float acc;
        void main() {
            int i;
            phase(1);
            acc = 0.0;
            for (i = 0; i < 10; i = i + 1) { acc = acc + fin(); }
            phase(2);
            for (i = 0; i < 10; i = i + 1) { acc = acc * 1.5; }
            out(acc);
        }
        """
        program = compile_source(source)
        images = collect_phase_profiles(program, inputs=[0.5] * 10)
        assert set(images) >= {1, 2}
        # Phase accounting is disjoint: no double counting of executions.
        from repro.profiling import collect_profile

        whole = collect_profile(program, inputs=[0.5] * 10)
        split_total = sum(
            profile.executions
            for image in images.values()
            for profile in image.instructions.values()
        )
        whole_total = sum(p.executions for p in whole.instructions.values())
        assert split_total == whole_total

    def test_predictor_state_carries_across_phases(self):
        from repro.isa import assemble
        from repro.profiling import collect_phase_profiles

        # The same static addi runs in phase 1 and phase 2; its stride
        # state must survive the phase boundary, so phase 2 starts
        # predicting immediately.
        program = assemble(
            """
.text
    li r1, 0
    phase 1
    addi r1, r1, 1
    addi r1, r1, 1
    phase 2
    addi r1, r1, 1
    addi r1, r1, 1
    halt
"""
        )
        images = collect_phase_profiles(program)
        # wait: those are 4 distinct static addis; use a loop instead.
        program = assemble(
            """
.text
    li r1, 0
    li r2, 3
    phase 1
init:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, init
    phase 2
    li r2, 6
comp:
    addi r1, r1, 1
    slt r3, r1, r2
    bnez r3, comp
    halt
"""
        )
        images = collect_phase_profiles(program)
        addi_phase1 = images[1].instructions[3]
        # Phase 1 runs the addi 3 times: allocate + train + 1 correct.
        assert addi_phase1.correct >= 1
