"""Tests for TSV serialization of result tables and the ASCII charts."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentTable
from repro.viz import (
    bar,
    chart_histogram_rows,
    chart_table,
    histogram_chart,
    series_chart,
    signed_bar,
)


def make_table():
    table = ExperimentTable(
        "fig-x.y", "A demo table", headers=["benchmark", "count", "gain"],
        notes=["a note"],
    )
    table.add_row("alpha", 10, 12.5)
    table.add_row("beta", 20, -3.25)
    return table


class TestTsv:
    def test_roundtrip(self):
        table = make_table()
        again = ExperimentTable.from_tsv(table.to_tsv())
        assert again.experiment_id == table.experiment_id
        assert again.title == table.title
        assert again.headers == table.headers
        assert again.rows == table.rows
        assert again.notes == table.notes

    def test_float_precision_preserved(self):
        table = ExperimentTable("x", "t", headers=["k", "v"])
        table.add_row("pi-ish", 3.141592653589793)
        again = ExperimentTable.from_tsv(table.to_tsv())
        assert again.rows[0][1] == 3.141592653589793

    def test_cell_types_preserved(self):
        again = ExperimentTable.from_tsv(make_table().to_tsv())
        assert isinstance(again.rows[0][1], int)
        assert isinstance(again.rows[0][2], float)
        assert isinstance(again.rows[0][0], str)

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            ExperimentTable.from_tsv("# experiment: x\n")


class TestBars:
    def test_bar_full_and_empty(self):
        assert bar(10, 10, width=10) == "█" * 10
        assert bar(0, 10, width=10) == ""
        assert bar(5, 0) == ""

    def test_bar_clamps_overflow(self):
        assert len(bar(100, 10, width=10)) == 10

    def test_signed_bar_negative_texture(self):
        positive = signed_bar(5, 10, width=10)
        negative = signed_bar(-5, 10, width=10)
        assert "█" in positive
        assert negative.startswith("-")
        assert "▒" in negative


class TestCharts:
    def test_histogram_chart_lines(self):
        chart = histogram_chart(["a", "bb"], [50.0, 100.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_series_chart_alignment(self):
        chart = series_chart(["one", "two"], [1.0, -2.0])
        assert len(chart.splitlines()) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            histogram_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            series_chart(["a", "b"], [1.0])

    def test_chart_table_defaults_to_last_numeric(self):
        chart = chart_table(make_table())
        assert "gain" in chart
        assert "alpha" in chart and "beta" in chart

    def test_chart_table_explicit_column(self):
        chart = chart_table(make_table(), column="count")
        assert "count" in chart

    def test_chart_table_no_numeric_column(self):
        table = ExperimentTable("x", "t", headers=["a", "b"])
        table.add_row("one", "two")
        with pytest.raises(ValueError):
            chart_table(table)

    def test_chart_histogram_rows(self):
        table = ExperimentTable("x", "t", headers=["name", "[0,10]", "(10,20]"])
        table.add_row("w1", 75.0, 25.0)
        table.add_row("w2", 10.0, 90.0)
        chart = chart_histogram_rows(table)
        assert "-- w1 --" in chart and "-- w2 --" in chart
