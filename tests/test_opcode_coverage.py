"""Exhaustive opcode coverage: every opcode executes correctly at least once."""

from __future__ import annotations

import pytest

from repro.isa import Opcode, assemble
from repro.machine import run_program, trace_program

# One program that retires every single opcode in the ISA.
ALL_OPCODES = """
.name coverage
.data
word: 11
fword: 2.5
.text
    ; integer register-register
    li r1, 6
    li r2, 4
    add r3, r1, r2      ; 10
    sub r3, r1, r2      ; 2
    mul r3, r1, r2      ; 24
    div r3, r1, r2      ; 1
    mod r3, r1, r2      ; 2
    and r3, r1, r2      ; 4
    or r3, r1, r2       ; 6
    xor r3, r1, r2      ; 2
    shl r3, r1, r2      ; 96
    shr r3, r1, r2      ; 0
    slt r3, r1, r2      ; 0
    sle r3, r1, r2      ; 0
    seq r3, r1, r2      ; 0
    sne r3, r1, r2      ; 1
    ; integer immediates
    addi r3, r1, 1
    subi r3, r1, 1
    muli r3, r1, 3
    divi r3, r1, 2
    modi r3, r1, 4
    andi r3, r1, 2
    ori r3, r1, 1
    xori r3, r1, 7
    shli r3, r1, 2
    shri r3, r1, 1
    slti r3, r1, 9
    slei r3, r1, 6
    seqi r3, r1, 6
    snei r3, r1, 6
    mov r4, r3
    neg r4, r4
    not r4, r4
    ; floating point
    fli r5, 1.5
    fli r6, 0.5
    fadd r7, r5, r6
    fsub r7, r5, r6
    fmul r7, r5, r6
    fdiv r7, r5, r6
    fneg r7, r7
    fmov r8, r7
    fslt r9, r6, r5
    fsle r9, r6, r5
    fseq r9, r6, r5
    fsne r9, r6, r5
    cvtif r10, r1
    cvtfi r11, r5
    ; memory
    ld r12, gp, 0
    st r12, gp, 2
    fld r13, gp, 1
    fst r13, gp, 3
    ; environment
    in r14
    fin r15
    out r14
    phase 2
    nop
    ; control
    beqz r0, taken1
    nop
taken1:
    li r16, 1
    bnez r16, taken2
    nop
taken2:
    jmp target
    nop
target:
    call fn
    jr r20              ; jump to the landing pad held in r20
fn:
    mov r20, ra         ; remember where to go after returning
    jr ra
"""
# Note: the final `jr r20` jumps back to the instruction after `call fn`
# — i.e. to itself — so we instead land on a halt placed there:


def build_program():
    # Replace the tail so execution terminates cleanly after exercising
    # call/jr: call fn; fn returns; then halt.
    source = ALL_OPCODES.replace(
        "    call fn\n    jr r20              ; jump to the landing pad held in r20\nfn:\n    mov r20, ra         ; remember where to go after returning\n    jr ra\n",
        "    call fn\n    halt\nfn:\n    jr ra\n",
    )
    return assemble(source)


class TestOpcodeCoverage:
    def test_program_retires_every_opcode(self):
        program = build_program()
        executed = set()
        for record in trace_program(program, inputs=[7, 2.25]):
            executed.add(program[record.address].opcode)
        missing = set(Opcode) - executed
        assert not missing, f"opcodes never executed: {sorted(o.value for o in missing)}"

    def test_program_output_and_halt(self):
        program = build_program()
        result = run_program(program, inputs=[7, 2.25])
        assert result.halted
        assert result.outputs == [7]

    @pytest.mark.parametrize(
        "body, inputs, expected",
        [
            ("sle r3, r1, r2\n out r3", (), 0),       # 6 <= 4
            ("sne r3, r1, r1\n out r3", (), 0),
            ("fsle r3, r2, r1\n out r3", (), 1),      # via int regs: 4 <= 6
            ("fseq r3, r1, r1\n out r3", (), 1),
            ("fsne r3, r1, r2\n out r3", (), 1),
        ],
    )
    def test_comparison_variants(self, body, inputs, expected):
        program = assemble(f".text\n li r1, 6\n li r2, 4\n {body}\n halt\n")
        assert run_program(program, inputs=inputs).outputs == [expected]

    def test_formats_reject_wrong_arity_for_every_opcode(self):
        """Each mnemonic given zero operands either parses (if its format
        is empty) or raises a clean AssemblerError."""
        from repro.isa import AssemblerError
        from repro.isa.formats import FORMATS

        for opcode in Opcode:
            source = f".text\n {opcode.value}\n halt\n"
            if FORMATS[opcode] == "":
                assemble(source)
            else:
                with pytest.raises(AssemblerError):
                    assemble(source)
