"""Unit tests for the abstract ILP machine."""

from __future__ import annotations

import pytest

from repro.core import (
    AlwaysClassification,
    HardwareClassification,
    PredictionEngine,
)
from repro.isa import assemble
from repro.ilp import IlpConfig, measure_ilp, measure_ilp_many, ilp_increase
from repro.predictors import StridePredictor

SERIAL_CHAIN = """
.text
    li r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    halt
"""

INDEPENDENT = """
.text
    li r1, 1
    li r2, 2
    li r3, 3
    li r4, 4
    li r5, 5
    li r6, 6
    li r7, 7
    halt
"""

STRIDE_LOOP = """
.text
    li r1, 0
    li r2, 200
loop:
    addi r1, r1, 1
    mul r3, r1, r1
    add r4, r3, r1
    slt r5, r1, r2
    bnez r5, loop
    halt
"""


class TestDataflowScheduling:
    def test_independent_instructions_run_in_parallel(self):
        result = measure_ilp(assemble(INDEPENDENT))
        # All 7 li's issue at cycle 0 and complete at cycle 1 (+ halt).
        assert result.ilp > 3.0

    def test_serial_chain_is_serialized(self):
        result = measure_ilp(assemble(SERIAL_CHAIN))
        # Each addi depends on the previous one: ~1 instruction per cycle.
        assert result.ilp < 1.5

    def test_chain_slower_than_independent(self):
        chain = measure_ilp(assemble(SERIAL_CHAIN))
        parallel = measure_ilp(assemble(INDEPENDENT))
        assert parallel.ilp > chain.ilp

    def test_window_limits_ilp(self):
        wide = measure_ilp(assemble(INDEPENDENT), config=IlpConfig(window_size=40))
        narrow = measure_ilp(assemble(INDEPENDENT), config=IlpConfig(window_size=2))
        assert wide.ilp >= narrow.ilp

    def test_memory_dependence_honored(self):
        source = """
.text
    li r1, 7
    st r1, gp, 0
    ld r2, gp, 0
    addi r3, r2, 1
    halt
"""
        with_memory = measure_ilp(
            assemble(source), config=IlpConfig(track_memory_dependencies=True)
        )
        without_memory = measure_ilp(
            assemble(source), config=IlpConfig(track_memory_dependencies=False)
        )
        assert with_memory.cycles >= without_memory.cycles

    def test_instruction_count_matches_trace(self):
        from repro.machine import run_program

        program = assemble(STRIDE_LOOP)
        result = measure_ilp(program)
        assert result.instructions == run_program(program).instruction_count


class TestValuePredictionEffect:
    def make_engine(self, program, scheme=None):
        return PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=scheme or AlwaysClassification(),
        )

    def test_prediction_collapses_serial_chain(self):
        program = assemble(STRIDE_LOOP)
        baseline = measure_ilp(program)
        predicted = measure_ilp(program, engine=self.make_engine(program))
        assert predicted.ilp > baseline.ilp
        assert predicted.taken_predictions > 0
        assert predicted.correct_predictions > 0

    def test_result_counters_consistent(self):
        program = assemble(STRIDE_LOOP)
        result = measure_ilp(program, engine=self.make_engine(program))
        assert (
            result.taken_predictions
            == result.correct_predictions + result.mispredictions
        )

    def test_misprediction_penalty_hurts(self):
        # An anti-predictable value stream: always take, often wrong.
        source = """
.text
    li r1, 1
    li r2, 120
    li r3, 0
loop:
    mul r4, r3, r3
    xori r3, r3, 1
    mul r5, r4, r4
    addi r1, r1, 1
    slt r6, r1, r2
    bnez r6, loop
    halt
"""
        program = assemble(source)
        cheap = measure_ilp(
            program,
            engine=self.make_engine(program),
            config=IlpConfig(misprediction_penalty=0),
        )
        costly = measure_ilp(
            program,
            engine=self.make_engine(program),
            config=IlpConfig(misprediction_penalty=10),
        )
        assert costly.cycles >= cheap.cycles

    def test_classified_never_worse_than_unclassified_on_noise(self):
        program = assemble(STRIDE_LOOP)
        unclassified = measure_ilp(program, engine=self.make_engine(program))
        classified = measure_ilp(
            program, engine=self.make_engine(program, HardwareClassification())
        )
        # The FSM avoids some predictions; on this highly predictable loop
        # both should still beat the baseline.
        baseline = measure_ilp(program)
        assert classified.ilp > baseline.ilp
        assert unclassified.ilp > baseline.ilp


class TestMultiConfig:
    def test_many_matches_single(self):
        program = assemble(STRIDE_LOOP)
        single_baseline = measure_ilp(program)
        single_predicted = measure_ilp(program, engine=self.engine(program))
        many = measure_ilp_many(
            program,
            (),
            engines={"novp": None, "vp": self.engine(program)},
        )
        assert many["novp"].cycles == single_baseline.cycles
        assert many["vp"].cycles == single_predicted.cycles

    @staticmethod
    def engine(program):
        return PredictionEngine(
            program, predictor=StridePredictor(), scheme=AlwaysClassification()
        )


class TestConfigValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            IlpConfig(window_size=0)

    def test_bad_penalty(self):
        with pytest.raises(ValueError):
            IlpConfig(misprediction_penalty=-1)

    def test_ilp_increase_helper(self):
        program = assemble(STRIDE_LOOP)
        baseline = measure_ilp(program)
        assert ilp_increase(baseline, baseline) == 0.0


class TestPerLabelConfigs:
    def test_configs_override_shared(self):
        from repro.isa import assemble

        program = assemble(STRIDE_LOOP)
        results = measure_ilp_many(
            program,
            (),
            engines={"narrow": None, "wide": None},
            config=IlpConfig(window_size=40),
            configs={"narrow": IlpConfig(window_size=2)},
        )
        assert results["narrow"].cycles >= results["wide"].cycles

    def test_configs_sweep_matches_individual_runs(self):
        from repro.isa import assemble

        program = assemble(STRIDE_LOOP)
        swept = measure_ilp_many(
            program,
            (),
            engines={"w4": None, "w64": None},
            configs={
                "w4": IlpConfig(window_size=4),
                "w64": IlpConfig(window_size=64),
            },
        )
        individual_w4 = measure_ilp(program, config=IlpConfig(window_size=4))
        individual_w64 = measure_ilp(program, config=IlpConfig(window_size=64))
        assert swept["w4"].cycles == individual_w4.cycles
        assert swept["w64"].cycles == individual_w64.cycles
