"""End-to-end tests for the profiling-as-a-service daemon.

Covers the issue's acceptance scenario: two tenants with overlapping
jobs against one shared trace store, results byte-identical to the
batch CLI, quotas enforced, streaming delivery, and graceful drain into
a ``RunReport``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cli import main
from repro.runner.retry import RetryPolicy
from repro.service import api
from repro.service.api import (
    AnnotateJob,
    ApiError,
    CompileJob,
    ProfileJob,
    TraceJob,
)
from repro.service.client import ServiceClient
from repro.service.engine import ServiceEngine
from repro.service.server import CHUNK_SIZE, ServiceServer

DEMO_SOURCE = """
int t[8];
void main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 8; i = i + 1) {
        t[i] = in() * 2;
        total = total + t[i];
    }
    out(total);
}
"""

INPUTS_A = "1,2,3,4,5,6,7,8"
INPUTS_B = "8,7,6,5,4,3,2,1"


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- the real daemon against the real engine --------------------------------


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    engine = ServiceEngine(store_dir=tmp_path_factory.mktemp("traces"))
    server = ServiceServer(engine=engine, workers=2)
    thread = server.run_in_thread()
    client = ServiceClient("127.0.0.1", server.port, timeout=120.0)
    yield client
    if server.report is None:
        client.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def batch_artifacts(tmp_path_factory):
    """The batch CLI's outputs for the demo program (the oracle)."""
    directory = tmp_path_factory.mktemp("batch")
    source = directory / "demo.mc"
    source.write_text(DEMO_SOURCE, encoding="utf-8")
    assembly = directory / "demo.asm"
    profile = directory / "demo.profile"
    trace = directory / "demo.trace"
    tagged = directory / "tagged.asm"
    assert main(["compile", str(source), "-o", str(assembly)]) == 0
    assert main(
        ["profile", str(assembly), "--inputs", INPUTS_A, "--inputs", INPUTS_B,
         "-o", str(profile)]
    ) == 0
    assert main(
        ["trace", str(assembly), "--inputs", INPUTS_A, "-o", str(trace)]
    ) == 0
    assert main(
        ["annotate", str(assembly), str(profile), "--threshold", "80",
         "-o", str(tagged)]
    ) == 0
    return {
        "assembly": assembly.read_text(encoding="utf-8"),
        "profile": profile.read_text(encoding="utf-8"),
        "trace": trace.read_text(encoding="utf-8"),
        "tagged": tagged.read_text(encoding="utf-8"),
    }


class TestEndToEnd:
    def test_health_and_stats(self, service):
        health = service.health()
        assert health["ok"] is True
        assert health["schema"] == api.SCHEMA
        stats = service.stats()
        assert stats.state == "serving"
        assert stats.queue_depth >= 1 and stats.tenant_quota >= 1

    def test_two_tenants_overlapping_jobs_match_batch_cli(
        self, service, batch_artifacts
    ):
        """The acceptance scenario: two tenants, one store, byte identity.

        All four jobs are submitted before any result is collected, so
        they overlap in the daemon's queue/workers, and the trace and
        profile jobs share capture work through the one TraceStore.
        """
        assembly = batch_artifacts["assembly"]
        inputs_a = [1, 2, 3, 4, 5, 6, 7, 8]
        inputs_b = [8, 7, 6, 5, 4, 3, 2, 1]
        submitted = [
            ("alice", CompileJob(source=DEMO_SOURCE, name="demo"), "assembly"),
            (
                "alice",
                ProfileJob(
                    program=assembly,
                    name="demo",
                    input_sets=(tuple(inputs_a), tuple(inputs_b)),
                ),
                "profile",
            ),
            ("bob", TraceJob(program=assembly, name="demo",
                             inputs=tuple(inputs_a)), "trace"),
            (
                "bob",
                AnnotateJob(
                    program=assembly,
                    profile=batch_artifacts["profile"],
                    name="demo",
                    accuracy_threshold=80.0,
                ),
                "tagged",
            ),
        ]
        replies = [
            (service.submit(job, tenant=tenant), expected)
            for tenant, job, expected in submitted
        ]
        for reply, expected in replies:
            result = service.result(reply.job_id)
            assert result.state == api.DONE
            assert result.output == batch_artifacts[expected], expected

    def test_result_replayed_from_shared_store(self, service, batch_artifacts):
        """A second tenant's identical trace job replays, byte-identical."""
        job = TraceJob(
            program=batch_artifacts["assembly"], name="demo",
            inputs=(1, 2, 3, 4, 5, 6, 7, 8),
        )
        result = service.run(job, tenant="carol")
        assert result.output == batch_artifacts["trace"]
        assert "trace_key" in result.meta

    def test_streaming_events_reassemble(self, service, batch_artifacts):
        reply = service.submit(
            CompileJob(source=DEMO_SOURCE, name="demo"), tenant="dave"
        )
        events = list(service.stream_result(reply.job_id))
        kinds = [event["event"] for event in events]
        assert kinds[-1] == api.EVENT_END
        assert api.EVENT_CHUNK in kinds
        assert set(kinds) <= {api.EVENT_STATUS, api.EVENT_CHUNK, api.EVENT_END}
        output = "".join(
            event["data"] for event in events if event["event"] == api.EVENT_CHUNK
        )
        assert output == batch_artifacts["assembly"]
        # The end event carries identity + meta, not a duplicate payload.
        end = events[-1]["result"]
        assert end["state"] == api.DONE and end["output"] == ""

    def test_job_status_lifecycle(self, service):
        reply = service.submit(CompileJob(source=DEMO_SOURCE, name="demo"))
        assert reply.state == api.QUEUED
        service.result(reply.job_id)
        status = service.status(reply.job_id)
        assert status.state == api.DONE
        assert status.kind == "compile"
        assert status.attempts == 1
        assert status.error is None

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ApiError) as info:
            service.status("no-such-job")
        assert info.value.code == api.UNKNOWN_JOB
        assert info.value.http_status == 404

    def test_bad_schema_is_400(self, service):
        body = {"schema": "repro-serve/999", "job": {"kind": "compile", "source": "x"}}
        status, payload = service._request("POST", api.JOBS_PATH, body)
        assert status == 400
        assert payload["error"]["code"] == api.BAD_REQUEST

    def test_invalid_job_rejected_at_submit(self, service):
        with pytest.raises(ApiError) as info:
            service.submit(CompileJob(source=""))
        assert info.value.code == api.INVALID_JOB

    def test_execution_error_fails_job(self, service, batch_artifacts):
        # The demo program reads eight inputs; an empty stream exhausts it.
        reply = service.submit(
            TraceJob(program=batch_artifacts["assembly"], name="demo", inputs=())
        )
        with pytest.raises(ApiError) as info:
            service.result(reply.job_id)
        assert info.value.code == api.EXECUTION_ERROR
        status = service.status(reply.job_id)
        assert status.state == api.FAILED
        assert status.error is not None
        assert status.error.code == api.EXECUTION_ERROR


# -- admission control and drain, with a controllable engine ----------------


class GatedEngine:
    """A stand-in engine whose jobs block until the test releases them."""

    def __init__(self, retry=None, output="gated-output"):
        self.retry = retry or RetryPolicy()
        self.gate = threading.Event()
        self.output = output
        self.failures = 0
        self.order = []

    def execute(self, job):
        if not self.gate.wait(timeout=30):  # pragma: no cover - test hang guard
            raise RuntimeError("gate never opened")
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("transient fault for the retry test")
        self.order.append(getattr(job, "name", job.KIND))
        return self.output, {"kind": job.KIND}


@pytest.fixture
def gated():
    engine = GatedEngine()
    server = ServiceServer(
        engine=engine, workers=1, queue_depth=2, tenant_quota=2
    )
    thread = server.run_in_thread()
    client = ServiceClient("127.0.0.1", server.port, timeout=60.0)
    yield engine, server, client
    engine.gate.set()
    if server.report is None:
        try:
            client.shutdown()
        except ApiError:
            pass
    thread.join(timeout=30)


JOB = CompileJob(source="void main() { out(1); }", name="tiny")


class TestAdmission:
    def test_tenant_quota_and_queue_depth(self, gated):
        engine, server, client = gated
        first = client.submit(JOB, tenant="alice")
        # The single worker picks the job up and blocks on the gate.
        assert wait_for(lambda: client.status(first.job_id).state == api.RUNNING)
        client.submit(JOB, tenant="alice")
        with pytest.raises(ApiError) as info:
            client.submit(JOB, tenant="alice")
        assert info.value.code == api.QUOTA_EXCEEDED
        assert info.value.http_status == 429
        # Another tenant still gets in (depth: 1 queued of 2)...
        client.submit(JOB, tenant="bob")
        # ...until the queue itself is full.
        with pytest.raises(ApiError) as full:
            client.submit(JOB, tenant="carol")
        assert full.value.code == api.QUEUE_FULL
        stats = client.stats()
        assert stats.tenants == {"alice": 2, "bob": 1}
        engine.gate.set()
        report = client.shutdown()
        assert [entry.status for entry in report.jobs] == ["ok"] * 3

    def test_quota_slot_frees_at_terminal_state(self, gated):
        engine, server, client = gated
        engine.gate.set()
        for _ in range(5):  # quota is 2; sequential jobs never collide
            result = client.run(JOB, tenant="alice")
            assert result.output == "gated-output"

    def test_priority_order(self, gated):
        engine, server, client = gated
        blocker = client.submit(CompileJob(source="s", name="blocker"),
                                tenant="alice")
        assert wait_for(lambda: client.status(blocker.job_id).state == api.RUNNING)
        # Submitted low before high; the single worker must still run
        # high first once the blocker clears.
        low = client.submit(CompileJob(source="s", name="low"),
                            tenant="bob", priority=0)
        high = client.submit(CompileJob(source="s", name="high"),
                             tenant="carol", priority=5)
        engine.gate.set()
        client.result(low.job_id)
        client.result(high.job_id)
        assert engine.order == ["blocker", "high", "low"]


class TestDrain:
    def test_drain_finishes_in_flight_jobs(self, gated):
        engine, server, client = gated
        running = client.submit(JOB, tenant="alice")
        assert wait_for(lambda: client.status(running.job_id).state == api.RUNNING)
        queued = client.submit(JOB, tenant="bob")
        reports = []
        shutdown = threading.Thread(
            target=lambda: reports.append(client.shutdown())
        )
        shutdown.start()
        assert wait_for(lambda: client.health()["state"] == "draining")
        # Draining: no new admissions, but admitted jobs will finish.
        with pytest.raises(ApiError) as info:
            client.submit(JOB, tenant="late")
        assert info.value.code == api.SHUTTING_DOWN
        assert info.value.http_status == 503
        engine.gate.set()
        shutdown.join(timeout=30)
        assert reports, "shutdown never returned"
        report = reports[0]
        assert {entry.job_id for entry in report.jobs} == {
            running.job_id, queued.job_id,
        }
        assert all(entry.status == "ok" for entry in report.jobs)
        assert report.exit_code == 0

    def test_failed_job_lands_in_report(self):
        # A real engine: the broken source fails deterministically, and
        # the drain report must carry the failure and its cause.
        server = ServiceServer(engine=ServiceEngine(), workers=1)
        thread = server.run_in_thread()
        client = ServiceClient("127.0.0.1", server.port, timeout=60.0)
        try:
            reply = client.submit(
                CompileJob(source="int main() {", name="broken"), tenant="alice"
            )
            with pytest.raises(ApiError):
                client.result(reply.job_id)
            report = client.shutdown()
            entry = {e.job_id: e for e in report.jobs}[reply.job_id]
            assert entry.status == "failed"
            assert entry.causes and api.INVALID_JOB in entry.causes[0]
            assert report.exit_code != 0
        finally:
            if server.report is None:
                client.shutdown()
            thread.join(timeout=30)


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        engine = GatedEngine(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.001)
        )
        engine.failures = 1
        engine.gate.set()
        server = ServiceServer(engine=engine, workers=1)
        thread = server.run_in_thread()
        client = ServiceClient("127.0.0.1", server.port, timeout=60.0)
        try:
            reply = client.submit(JOB, tenant="alice")
            result = client.result(reply.job_id)
            assert result.state == api.DONE
            assert client.status(reply.job_id).attempts == 2
            report = client.shutdown()
            assert report.retries == 1
        finally:
            if server.report is None:
                client.shutdown()
            thread.join(timeout=30)


class TestChunking:
    def test_large_output_streams_in_chunks(self):
        output = "x" * (2 * CHUNK_SIZE + 17)
        engine = GatedEngine(output=output)
        engine.gate.set()
        server = ServiceServer(engine=engine, workers=1)
        thread = server.run_in_thread()
        client = ServiceClient("127.0.0.1", server.port, timeout=60.0)
        try:
            reply = client.submit(JOB, tenant="alice")
            events = list(client.stream_result(reply.job_id))
            chunks = [e["data"] for e in events if e["event"] == api.EVENT_CHUNK]
            assert len(chunks) == 3
            assert all(len(chunk) <= CHUNK_SIZE for chunk in chunks)
            assert "".join(chunks) == output
            assert client.result(reply.job_id).output == output
        finally:
            client.shutdown()
            thread.join(timeout=30)
