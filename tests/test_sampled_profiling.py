"""Fidelity tests for sampled phase-2 profiling (``sample_every``)."""

from __future__ import annotations

import pytest

from repro.annotate import AnnotationPolicy, plan_directives
from repro.cli import main as cli_main
from repro.machine import Executor, TraceStore
from repro.profiling import collect_profile, dumps_profile, merge_profiles
from repro.profiling.phases import collect_phase_profiles
from repro.service.api import ApiError, ProfileJob, job_from_dict
from repro.service.engine import ServiceEngine
from repro.workloads import get_workload
from repro.workloads.corpus import generate_corpus

BUDGET = 100_000


@pytest.fixture(scope="module")
def workload():
    return generate_corpus(1997, 3)[1]


@pytest.fixture(scope="module")
def program(workload):
    return workload.compile()


@pytest.fixture(scope="module")
def inputs(workload):
    return workload.test_inputs()


@pytest.fixture(scope="module")
def records(program, inputs):
    return list(Executor(program, inputs=inputs).run())


class TestValidation:
    def test_sample_every_must_be_positive_int(self, program, records):
        for bad in (0, -1, 1.5, True, "2"):
            with pytest.raises(ValueError):
                collect_profile(program, records=records, sample_every=bad)

    def test_bucket_validation(self, program, records):
        with pytest.raises(ValueError):
            collect_profile(program, records=records, address_buckets=0)
        with pytest.raises(ValueError):
            collect_profile(
                program, records=records, address_buckets=4, address_bucket=4
            )
        with pytest.raises(ValueError):
            collect_profile(
                program, records=records, address_buckets=4, address_bucket=-1
            )

    def test_phases_validation(self, program, inputs):
        with pytest.raises(ValueError):
            collect_phase_profiles(program, inputs, sample_every=0)


class TestByteIdentity:
    def test_k1_records_path(self, program, records):
        full = collect_profile(program, records=records, run_label="r")
        k1 = collect_profile(
            program, records=records, run_label="r", sample_every=1
        )
        assert dumps_profile(k1) == dumps_profile(full)

    def test_k1_executor_path(self, program, inputs):
        full = collect_profile(program, inputs, run_label="r")
        k1 = collect_profile(program, inputs, run_label="r", sample_every=1)
        assert dumps_profile(k1) == dumps_profile(full)

    def test_k1_store_path(self, program, inputs):
        store = TraceStore(None)
        full = collect_profile(program, inputs, run_label="r", store=store)
        k1 = collect_profile(
            program, inputs, run_label="r", sample_every=1, store=store
        )
        assert dumps_profile(k1) == dumps_profile(full)

    def test_k1_phase_split(self, program, inputs):
        full = collect_phase_profiles(program, inputs, run_label="r")
        k1 = collect_phase_profiles(
            program, inputs, run_label="r", sample_every=1
        )
        assert sorted(full) == sorted(k1)
        for phase in full:
            assert dumps_profile(k1[phase]) == dumps_profile(full[phase])


class TestSampledEquivalence:
    @pytest.mark.parametrize("k", [2, 3, 7, 10])
    def test_all_paths_match_thinned_records(self, program, inputs, records, k):
        reference = collect_profile(
            program, records=records[::k], run_label="r"
        )
        via_records = collect_profile(
            program, records=records, run_label="r", sample_every=k
        )
        via_executor = collect_profile(
            program, inputs, run_label="r", sample_every=k
        )
        store = TraceStore(None)
        collect_profile(program, inputs, run_label="warm", store=store)
        via_store = collect_profile(
            program, inputs, run_label="r", sample_every=k, store=store
        )
        expected = dumps_profile(reference)
        assert dumps_profile(via_records) == expected
        assert dumps_profile(via_executor) == expected
        assert dumps_profile(via_store) == expected

    def test_sampling_applies_before_candidate_filter(self, program, records):
        # The rule is global-position modulo k over the *unfiltered*
        # stream, so the kept count equals the candidates among
        # records[::k] — not the thinned candidate-only stream, which
        # lands on different positions (the two counts differ on this
        # pinned workload, so the ordering is actually exercised).
        k = 3
        sampled = collect_profile(
            program, records=records, run_label="r", sample_every=k
        )
        kept = sum(p.executions for p in sampled.instructions.values())
        candidate_only = [
            record
            for record in records
            if program[record.address].is_prediction_candidate
        ]
        expected = sum(
            1
            for record in records[::k]
            if program[record.address].is_prediction_candidate
        )
        assert kept == expected
        assert kept != len(candidate_only[::k])

    def test_paper_workload_also_covered(self):
        workload = get_workload("130.li")
        program = workload.compile()
        inputs = workload.test_inputs(scale=0.05)
        records = list(Executor(program, inputs=inputs).run())
        for k in (1, 5):
            reference = collect_profile(
                program, records=records[::k], run_label="r"
            )
            sampled = collect_profile(
                program, inputs, run_label="r", sample_every=k
            )
            assert dumps_profile(sampled) == dumps_profile(reference)


class TestAddressBuckets:
    def test_buckets_partition_full_profile(self, program, inputs):
        full = collect_profile(program, inputs, run_label="r")
        merged_counts = {}
        for bucket in range(4):
            image = collect_profile(
                program,
                inputs,
                run_label="r",
                address_buckets=4,
                address_bucket=bucket,
            )
            for address, profile in image.instructions.items():
                assert address % 4 == bucket
                assert address not in merged_counts
                merged_counts[address] = profile.executions
        assert merged_counts == {
            address: profile.executions
            for address, profile in full.instructions.items()
        }

    def test_buckets_compose_with_sampling(self, program, inputs, records):
        sampled = collect_profile(
            program,
            inputs,
            run_label="r",
            sample_every=2,
            address_buckets=2,
            address_bucket=1,
        )
        reference = collect_profile(
            program,
            records=[r for r in records[::2] if r.address % 2 == 1],
            run_label="r",
        )
        assert dumps_profile(sampled) == dumps_profile(reference)


class TestServiceJob:
    def test_round_trip(self):
        job = ProfileJob(
            program=".text\n", name="p", input_sets=((1,),), sample_every=7
        )
        assert job_from_dict(job.to_dict()) == job

    def test_default_is_full_profile(self):
        payload = ProfileJob(program=".text\n").to_dict()
        del payload["sample_every"]
        assert job_from_dict(payload).sample_every == 1

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "2"])
    def test_invalid_sample_every_rejected(self, bad):
        payload = ProfileJob(program=".text\n").to_dict()
        payload["sample_every"] = bad
        with pytest.raises(ApiError):
            job_from_dict(payload)

    def test_engine_matches_collector(self, tmp_path, workload, program, inputs):
        from repro.isa import disassemble

        engine = ServiceEngine(store_dir=tmp_path / "traces")
        job = ProfileJob(
            program=disassemble(program),
            name=program.name,
            input_sets=(tuple(inputs),),
            sample_every=4,
        )
        payload, _meta = engine.run_profile(job)
        local = collect_profile(
            program, inputs, run_label="run-0", sample_every=4
        )
        assert payload == dumps_profile(local)


class TestProfileCli:
    def test_sample_every_flag(self, tmp_path, workload, program, inputs, records):
        from repro.isa import disassemble

        asm = tmp_path / "prog.asm"
        asm.write_text(disassemble(program), encoding="utf-8")
        spec = ",".join(str(value) for value in inputs)
        full_path = tmp_path / "full.profile"
        k1_path = tmp_path / "k1.profile"
        k5_path = tmp_path / "k5.profile"
        assert cli_main(
            ["profile", str(asm), "--inputs", spec, "-o", str(full_path)]
        ) == 0
        assert cli_main(
            ["profile", str(asm), "--inputs", spec, "--sample-every", "1",
             "-o", str(k1_path)]
        ) == 0
        assert cli_main(
            ["profile", str(asm), "--inputs", spec, "--sample-every", "5",
             "-o", str(k5_path)]
        ) == 0
        assert k1_path.read_bytes() == full_path.read_bytes()
        reference = collect_profile(
            program, records=records[::5], run_label="run-0"
        )
        assert k5_path.read_text(encoding="utf-8") == dumps_profile(reference)


@pytest.mark.slow
class TestFidelityMonotone:
    def test_agreement_non_increasing_over_nested_rates(self):
        # Powers of two give *nested* sample sets (every record kept at
        # k=8 is kept at k=4, and so on), so on a pinned corpus slice
        # directive agreement with the full profile cannot recover as k
        # grows.  A deterministic regression check, not a theorem for
        # arbitrary rates.
        policy = AnnotationPolicy(accuracy_threshold=90.0)
        rates = (1, 2, 4, 8)
        agreements = {rate: [] for rate in rates}
        for workload in generate_corpus(1997, 6):
            program = workload.compile()
            training = workload.training_inputs()
            store = TraceStore(None)
            merged = {
                rate: merge_profiles(
                    [
                        collect_profile(
                            program,
                            inputs,
                            run_label=f"t{index}",
                            sample_every=rate,
                            store=store,
                        )
                        for index, inputs in enumerate(training)
                    ]
                )
                for rate in rates
            }
            full_plan = plan_directives(program, merged[1], policy)
            for rate in rates:
                plan = plan_directives(program, merged[rate], policy)
                agree = sum(
                    1
                    for address, directive in full_plan.items()
                    if plan.get(address) == directive
                )
                agreements[rate].append(agree / len(full_plan))
        means = [
            sum(agreements[rate]) / len(agreements[rate]) for rate in rates
        ]
        assert means[0] == 1.0
        for higher_rate_mean, lower_rate_mean in zip(means[1:], means):
            assert higher_rate_mean <= lower_rate_mean + 1e-9
