"""The learned predictability classifier (`repro.classify`).

Covers the feature schema, the profile-derived labels, byte-determinism
of training (in-process and across `PYTHONHASHSEED` values), the
digest-stamped model format, and the `LearnedClassification` scheme's
conformance to the `ClassificationScheme` contract.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotate import AnnotationPolicy
from repro.classify import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    LABEL_NAMES,
    LABEL_NONE,
    ModelFormatError,
    annotate_with_model,
    build_dataset,
    dataset_rows,
    directive_label,
    dumps_model,
    extract_features,
    label_directive,
    label_program,
    loads_model,
    majority_label,
    model_digest,
    predict_directives,
    predict_labels,
    profile_workload,
    split_corpus,
    train_model,
)
from repro.core import LearnedClassification
from repro.isa import Directive
from repro.workloads.corpus import corpus_workload, generate_corpus


@pytest.fixture(scope="module")
def labeled_corpus():
    """A small labeled corpus slice, built once for the whole module."""
    workloads = generate_corpus(1997, 6)
    return build_dataset(workloads, training_runs=2, scale=0.1)


@pytest.fixture(scope="module")
def trained(labeled_corpus):
    rows = dataset_rows(labeled_corpus)
    return train_model(rows, seed=1997), rows


class TestFeatures:
    def test_covers_every_candidate(self):
        program = corpus_workload(7).compile()
        features = extract_features(program)
        assert set(features) == set(program.candidate_addresses)

    def test_schema_width_and_integrality(self):
        program = corpus_workload(7).compile()
        for vector in extract_features(program).values():
            assert len(vector) == len(FEATURE_NAMES)
            assert all(isinstance(value, int) for value in vector)
            assert all(value >= 0 for value in vector)

    def test_deterministic_across_calls(self):
        program = corpus_workload(11).compile()
        assert extract_features(program) == extract_features(program)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_schema_holds_on_any_corpus_program(self, seed):
        program = corpus_workload(seed).compile()
        for vector in extract_features(program).values():
            assert len(vector) == len(FEATURE_NAMES)
            assert all(isinstance(value, int) and value >= 0 for value in vector)

    def test_schema_version_pins_name_list(self):
        # Renaming/adding a feature is a schema change: bump the version.
        assert FEATURE_SCHEMA_VERSION == 1
        assert len(FEATURE_NAMES) == len(set(FEATURE_NAMES))


class TestLabels:
    def test_directive_round_trip(self):
        for directive in (None, Directive.LAST_VALUE, Directive.STRIDE):
            assert label_directive(directive_label(directive)) is directive

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            label_directive(7)

    def test_labels_match_phase3_policy(self):
        workload = corpus_workload(3)
        program, profile = profile_workload(workload, training_runs=2, scale=0.1)
        policy = AnnotationPolicy()
        labels = label_program(program, profile, policy)
        assert set(labels) == set(program.candidate_addresses)
        for address, label in labels.items():
            stats = profile.instructions.get(address)
            expected = None if stats is None else policy.classify(stats)
            assert label == directive_label(expected)

    def test_majority_label_breaks_ties_low(self):
        vector = tuple(0 for _ in FEATURE_NAMES)
        rows = [(vector, 2), (vector, 0), (vector, 2), (vector, 0)]
        assert majority_label(rows) == 0

    def test_split_corpus_is_a_prefix(self):
        workloads = generate_corpus(1997, 8)
        training, held_out = split_corpus(workloads, train_fraction=0.75)
        assert training + held_out == list(workloads)
        assert len(training) == 6
        with pytest.raises(ValueError):
            split_corpus(workloads, train_fraction=1.5)
        with pytest.raises(ValueError):
            split_corpus(workloads[:1])


class TestTrainingDeterminism:
    def test_byte_identical_for_same_seed_and_corpus(self, trained):
        model, rows = trained
        again = train_model(list(rows), seed=1997)
        assert dumps_model(again) == dumps_model(model)

    def test_row_order_cannot_matter(self, trained):
        model, rows = trained
        reordered = train_model(list(reversed(rows)), seed=1997)
        assert dumps_model(reordered) == dumps_model(model)

    def test_subsampling_is_seeded(self, trained):
        _, rows = trained
        limit = max(2, len(rows) // 2)
        first = train_model(rows, seed=41, max_rows=limit)
        second = train_model(rows, seed=41, max_rows=limit)
        assert dumps_model(first) == dumps_model(second)
        assert first.training_rows == limit

    def test_hash_seed_independent(self):
        # The real property: byte-identical model files across
        # *processes* with different PYTHONHASHSEED values.
        script = (
            "from repro.classify import build_dataset, dataset_rows, "
            "dumps_model, train_model\n"
            "from repro.workloads.corpus import generate_corpus\n"
            "rows = dataset_rows(build_dataset("
            "generate_corpus(1997, 4), training_runs=2, scale=0.1))\n"
            "import hashlib\n"
            "text = dumps_model(train_model(rows, seed=1997))\n"
            "print(hashlib.sha256(text.encode()).hexdigest())\n"
        )
        digests = set()
        for hash_seed in ("0", "1", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
                check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            train_model([])
        vector = tuple(0 for _ in FEATURE_NAMES)
        with pytest.raises(ValueError):
            train_model([(vector[:3], 0)])
        with pytest.raises(ValueError):
            train_model([(vector, 9)])


class TestModelFormat:
    def test_round_trip_preserves_everything(self, trained):
        model, _ = trained
        text = dumps_model(model)
        reloaded = loads_model(text)
        assert reloaded == model
        assert dumps_model(reloaded) == text
        assert model_digest(reloaded) == model_digest(model)

    def test_header_digest_matches_body(self, trained):
        model, _ = trained
        header = dumps_model(model).split("\n", 1)[0]
        assert header == f"repro-classify-model/1 sha256={model_digest(model)}"

    def test_tampered_body_rejected(self, trained):
        model, _ = trained
        text = dumps_model(model)
        tampered = text.replace('"seed":1997', '"seed":1998')
        assert tampered != text
        with pytest.raises(ModelFormatError):
            loads_model(tampered)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "no newline at all",
            "wrong-magic/1 sha256=abc\n{}\n",
            "repro-classify-model/1 md5=abc\n{}\n",
            "repro-classify-model/1 sha256=\n{}\n",
        ],
    )
    def test_malformed_headers_rejected(self, text):
        with pytest.raises(ModelFormatError):
            loads_model(text)

    def test_schema_version_mismatch_rejected(self, trained):
        model, _ = trained
        import dataclasses

        future = dataclasses.replace(model, schema_version=99)
        with pytest.raises(ModelFormatError, match="schema"):
            loads_model(dumps_model(future))

    def test_format_error_is_a_value_error(self):
        # The service engine's _JOB_FAULTS taxonomy relies on this.
        assert issubclass(ModelFormatError, ValueError)


class TestLearnedClassification:
    def test_scheme_matches_model_predictions(self, trained):
        model, _ = trained
        program = corpus_workload(5).compile()
        scheme = LearnedClassification.from_model(model, program)
        directives = predict_directives(model, program)
        labels = predict_labels(model, program)
        assert set(labels) == set(program.candidate_addresses)
        for address in program.candidate_addresses:
            tagged = address in directives
            assert scheme.may_allocate(address) == tagged
            assert scheme.should_take(address) == tagged
            assert scheme.directive_of(address) == directives.get(address)
        assert scheme.tagged_count == len(directives)

    def test_untagged_never_allocates(self, trained):
        model, _ = trained
        program = corpus_workload(5).compile()
        scheme = LearnedClassification.from_model(model, program)
        untagged = [
            address
            for address, label in predict_labels(model, program).items()
            if label == LABEL_NONE
        ]
        for address in untagged:
            assert not scheme.may_allocate(address)
            assert not scheme.should_take(address)
            assert scheme.directive_of(address) is None

    def test_record_and_evict_are_stateless(self, trained):
        model, _ = trained
        program = corpus_workload(5).compile()
        scheme = LearnedClassification.from_model(model, program)
        before = {
            address: scheme.should_take(address)
            for address in program.candidate_addresses
        }
        for address in program.candidate_addresses:
            scheme.record(address, False)
            scheme.on_evict(address)
        after = {
            address: scheme.should_take(address)
            for address in program.candidate_addresses
        }
        assert after == before

    def test_annotate_with_model_clears_stale_tags(self, trained):
        model, _ = trained
        program = corpus_workload(5).compile()
        stale = program.with_directives(
            {address: Directive.STRIDE for address in program.candidate_addresses}
        )
        annotated = annotate_with_model(model, stale)
        assert annotated.directives() == predict_directives(model, program)


def test_label_names_are_the_closed_set():
    assert LABEL_NAMES == ("none", "last-value", "stride")
