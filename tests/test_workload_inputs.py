"""Tests for the deterministic input generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import Lcg, scaled, text_stream
from repro.workloads import all_workloads


class TestLcg:
    def test_deterministic(self):
        assert Lcg(42).integers(20, 100) == Lcg(42).integers(20, 100)

    def test_seeds_differ(self):
        assert Lcg(1).integers(20, 1000) != Lcg(2).integers(20, 1000)

    def test_below_in_range(self):
        generator = Lcg(7)
        for _ in range(1000):
            assert 0 <= generator.below(13) < 13

    def test_in_range_inclusive(self):
        generator = Lcg(9)
        values = {generator.in_range(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_floats_in_interval(self):
        for value in Lcg(3).floats(500, -2.0, 2.0):
            assert -2.0 <= value < 2.0

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            Lcg(1).below(0)
        with pytest.raises(ValueError):
            Lcg(1).in_range(5, 4)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**40))
    def test_state_stays_in_modulus(self, seed):
        generator = Lcg(seed)
        for _ in range(50):
            assert 0 <= generator.next() < Lcg.MODULUS


class TestScaled:
    def test_identity_at_one(self):
        assert scaled(100, 1.0) == 100

    def test_minimum_clamp(self):
        assert scaled(10, 0.01, minimum=3) == 3

    def test_rounding(self):
        assert scaled(10, 0.25) == 2  # round(2.5) banker's -> 2
        assert scaled(10, 0.35) == 4


class TestTextStream:
    def test_values_in_alphabet(self):
        stream = text_stream(5, 1000, alphabet=26)
        assert all(0 <= value < 26 for value in stream)
        assert len(stream) == 1000

    def test_skew_toward_low_codes(self):
        stream = text_stream(5, 5000, alphabet=26)
        low = sum(1 for value in stream if value < 13)
        assert low > len(stream) * 0.6

    def test_deterministic(self):
        assert text_stream(1, 100) == text_stream(1, 100)


class TestInputSetProperties:
    @pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
    def test_input_sets_deterministic(self, workload):
        assert workload.input_set(0, scale=0.1) == workload.input_set(0, scale=0.1)

    @pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
    def test_input_sets_differ_across_indices(self, workload):
        streams = {tuple(workload.input_set(i, scale=0.1)) for i in range(6)}
        assert len(streams) == 6

    def test_negative_index_rejected(self):
        workload = all_workloads()[0]
        with pytest.raises(ValueError):
            workload.input_set(-1)
