"""Concurrent-writer and crash-safety tests for the shared TraceStore.

The service daemon shares one on-disk store across tenants and worker
threads, and parallel experiment workers share it across processes.
These tests pin the publish contract: content-keyed write-to-temp +
atomic rename, duplicate publishes idempotent, and no torn or corrupt
entry ever observable as a hit.
"""

from __future__ import annotations

import multiprocessing

from repro.isa import assemble, disassemble
from repro.lang import compile_source
from repro.machine import TraceStore
from repro.machine.executor import DEFAULT_BUDGET
from repro.machine.tracestore import PackedTrace, trace_key
from repro.runner.faults import CORRUPTION_PREFIX, corrupt_payload

SOURCE = """
int t[8];
void main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 8; i = i + 1) {
        t[i] = in() * 2;
        total = total + t[i];
    }
    out(total);
}
"""

INPUTS = [1, 2, 3, 4, 5, 6, 7, 8]


def build_program():
    return compile_source(SOURCE, name="demo")


def consume(store: TraceStore, program) -> list:
    """Drain one trace through the store; returns the flat record list."""
    records = []
    for batch in store.batches(program, INPUTS):
        records.extend(batch.records())
    return records


def committed_files(directory) -> list:
    return sorted(directory.glob("*/*.trace"))


def _capture_in_child(assembly: str, store_dir: str, barrier, queue) -> None:
    """One concurrent writer: capture the demo trace into the shared store."""
    program = assemble(assembly, name="demo")
    store = TraceStore(store_dir)
    barrier.wait(timeout=30)  # line both writers up on the same race
    records = consume(store, program)
    queue.put(len(records))


class TestConcurrentWriters:
    def test_two_processes_same_digest_race_free(self, tmp_path):
        program = build_program()
        assembly = disassemble(program)
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        queue = context.Queue()
        writers = [
            context.Process(
                target=_capture_in_child,
                args=(assembly, str(tmp_path), barrier, queue),
            )
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        counts = [queue.get(timeout=120) for _ in writers]
        for writer in writers:
            writer.join(timeout=30)
            assert writer.exitcode == 0
        # Both writers saw the full trace...
        assert counts[0] == counts[1] > 0
        # ...and raced to exactly one committed entry, which decodes.
        files = committed_files(tmp_path)
        assert len(files) == 1
        packed = PackedTrace.from_bytes(files[0].read_bytes())
        assert packed.records == counts[0]
        assert packed.halted
        # No temp residue from the losing writer's publish.
        assert not list(tmp_path.glob("**/.trace-*.tmp"))
        # A fresh store replays the committed entry identically.
        replayed = consume(TraceStore(tmp_path), program)
        fresh = consume(TraceStore(None), program)
        assert replayed == fresh

    def test_duplicate_publish_is_idempotent(self, tmp_path):
        program = build_program()
        first_store = TraceStore(tmp_path)
        baseline = consume(first_store, program)
        (path,) = committed_files(tmp_path)
        stat = path.stat()
        blob = path.read_bytes()
        # A second writer that never saw the first entry captures and
        # publishes the same key: the existing entry must be left alone.
        second_store = TraceStore(tmp_path)
        key = trace_key(program, INPUTS, DEFAULT_BUDGET)
        duplicate = []
        for batch in second_store._capture_batches(
            key, program, list(INPUTS), DEFAULT_BUDGET, 4096
        ):
            duplicate.extend(batch.records())
        assert duplicate == baseline
        assert committed_files(tmp_path) == [path]
        assert path.read_bytes() == blob
        assert path.stat().st_mtime_ns == stat.st_mtime_ns

    def test_partial_write_crash_leaves_no_committed_entry(self, tmp_path):
        program = build_program()
        store = TraceStore(tmp_path)
        consume(store, program)
        (path,) = committed_files(tmp_path)
        # Crash model A: the writer died before the rename — only a temp
        # file exists.  The committed namespace is untouched; the stray
        # temp never shadows a key.
        committed = path.read_bytes()
        stray = path.parent / ".trace-dead-writer.tmp"
        stray.write_bytes(committed[: len(committed) // 2])
        fresh = TraceStore(tmp_path)
        assert fresh.fetch(program, INPUTS) is not None
        assert committed_files(tmp_path) == [path]
        # Crash model B: the committed entry itself is truncated (torn
        # by a crashed non-atomic writer).  A reader treats it as a miss,
        # drops it, and the next capture rewrites a good entry.
        path.write_bytes(committed[: len(committed) // 2])
        torn_reader = TraceStore(tmp_path)
        assert torn_reader.fetch(program, INPUTS) is None
        assert not path.exists(), "torn entry must be dropped, not served"
        recovered = consume(torn_reader, program)
        assert recovered == consume(TraceStore(None), program)
        assert PackedTrace.from_bytes(path.read_bytes()).records == len(recovered)

    def test_fault_injected_corruption_is_a_miss(self, tmp_path):
        # Reuse the PR 3 fault-injection corruption model: the committed
        # payload gets the canonical corruption prefix every codec rejects.
        program = build_program()
        store = TraceStore(tmp_path)
        baseline = consume(store, program)
        (path,) = committed_files(tmp_path)
        text = path.read_bytes().decode("latin-1")
        corrupted = corrupt_payload(text)
        assert corrupted.startswith(CORRUPTION_PREFIX)
        path.write_bytes(corrupted.encode("latin-1"))
        reader = TraceStore(tmp_path)
        assert reader.fetch(program, INPUTS) is None
        assert consume(reader, program) == baseline

    def test_threaded_readers_share_one_lru(self, tmp_path):
        import threading

        program = build_program()
        store = TraceStore(tmp_path)
        baseline = consume(store, program)
        results = []
        errors = []

        def reader():
            try:
                results.append(consume(store, program))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 8
        assert all(result == baseline for result in results)
