"""Tests for the dynamic run-statistics collector."""

from __future__ import annotations

import pytest

from repro.isa import Category, assemble
from repro.machine import collect_statistics, run_program


class TestCollectStatistics:
    def test_instruction_count_matches_run(self, count_program):
        stats = collect_statistics(count_program)
        result = run_program(count_program)
        assert stats.instructions == result.instruction_count

    def test_category_counts_sum_to_total(self, count_program):
        stats = collect_statistics(count_program)
        assert sum(stats.by_category.values()) == stats.instructions

    def test_candidate_fraction(self, count_program):
        stats = collect_statistics(count_program)
        assert 0.0 < stats.candidate_fraction < 100.0
        assert stats.candidate_footprint == len(count_program.candidate_addresses)

    def test_branch_accounting(self):
        # Loop of 5 iterations: bnez taken 4 times, not taken once.
        program = assemble(
            """
.text
    li r1, 0
loop:
    addi r1, r1, 1
    slti r2, r1, 5
    bnez r2, loop
    halt
"""
        )
        stats = collect_statistics(program)
        assert stats.branches == 5
        assert stats.taken_branches == 4
        assert stats.taken_branch_fraction == pytest.approx(80.0)

    def test_untaken_branch(self):
        program = assemble(".text\n li r1, 1\n beqz r1, end\n nop\nend:\n halt\n")
        stats = collect_statistics(program)
        assert stats.branches == 1
        assert stats.taken_branches == 0

    def test_data_footprint(self, count_program):
        stats = collect_statistics(count_program)
        assert stats.data_footprint == 1  # only `counter`

    def test_static_footprint_at_most_code_size(self, count_program):
        stats = collect_statistics(count_program)
        assert stats.static_footprint <= len(count_program)

    def test_fp_categories_counted(self):
        program = assemble(
            ".text\n fli r1, 1.5\n fli r2, 2.0\n fadd r3, r1, r2\n fst r3, gp, 0\n"
            " fld r4, gp, 0\n halt\n"
        )
        stats = collect_statistics(program)
        assert stats.by_category[Category.FP_ALU] == 3
        assert stats.by_category[Category.FP_LOAD] == 1
        assert stats.by_category[Category.STORE] == 1
