"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
"""

from setuptools import setup

setup()
