# Convenience targets for the reproduction.

PYTHON ?= python3
SCALE ?= 1.0
JOBS ?= 0

.PHONY: install test test-fast check bench perf experiments examples clean

install:
	pip install -e . --no-build-isolation || \
	  $(PYTHON) -c "import site, os; open(os.path.join(site.getsitepackages()[0], 'repro-dev.pth'), 'w').write(os.path.abspath('src'))"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

check:
	$(PYTHON) -m repro check

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

perf:
	$(PYTHON) -m repro bench

experiments:
	$(PYTHON) -m repro experiments all --scale $(SCALE) --jobs $(JOBS) \
		--output-dir results/tables

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/custom_workload.py
	$(PYTHON) examples/input_sensitivity.py 134.perl 0.3
	$(PYTHON) examples/hybrid_predictor.py 132.ijpeg 0.3
	$(PYTHON) examples/spec_study.py 126.gcc 0.3
	$(PYTHON) examples/critical_path.py 132.ijpeg 70

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
