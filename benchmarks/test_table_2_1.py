"""Bench: regenerate Table 2.1 (prediction accuracy by category)."""

from repro.experiments import table_2_1
from conftest import run_and_print


def test_table_2_1(benchmark, bench_context):
    table = run_and_print(benchmark, table_2_1.run, bench_context)
    rows = table.row_map("category")
    # Shape: a substantial fraction of values is predictable, and the
    # stride predictor beats last-value on integer ALU instructions.
    alu = rows["ALU instructions"]
    stride_accuracy, last_value_accuracy = alu[3], alu[4]
    assert stride_accuracy >= last_value_accuracy
    assert stride_accuracy > 30.0
