"""Bench: regenerate Figure 4.2 (M(V)average across 5 input sets)."""

from repro.experiments import fig_4_2
from conftest import run_and_print


def test_fig_4_2(benchmark, bench_context):
    table = run_and_print(benchmark, fig_4_2.run, bench_context)
    for row in table.rows:
        name, low, *rest = row
        # The average metric concentrates sharply at the bottom.
        assert low >= max(rest), name
