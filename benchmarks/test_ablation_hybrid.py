"""Bench: hybrid split vs unified tables (DESIGN.md ablation)."""

from conftest import run_and_print
from repro.experiments import ablation_hybrid


def test_ablation_hybrid(benchmark, bench_context):
    table = run_and_print(benchmark, ablation_hybrid.run, bench_context)
    for row in table.rows:
        name, stride_ok, hybrid_ok, lv_ok, *_bad = row
        # The hybrid must retain the bulk of the unified stride table's
        # coverage with a quarter of the stride fields...
        assert hybrid_ok >= 0.7 * stride_ok, name
    # ...and across the suite it clearly beats pure last-value.
    total_hybrid = sum(row[2] for row in table.rows)
    total_lv = sum(row[3] for row in table.rows)
    assert total_hybrid > total_lv
