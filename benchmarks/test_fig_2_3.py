"""Bench: regenerate Figure 2.3 (stride-efficiency-ratio distribution)."""

from repro.experiments import fig_2_3
from conftest import run_and_print


def test_fig_2_3(benchmark, bench_context):
    table = run_and_print(benchmark, fig_2_3.run, bench_context)
    # Shape: bimodal — most instructions reuse their last value (ratio
    # near 0), a small subset is purely stride-patterned (near 100).
    for row in table.rows:
        name, low, *rest = row
        high = rest[-1]
        middle = rest[:-1]
        assert low + high > sum(middle), name
