"""Bench: regenerate Figure 4.1 (M(V)max across 5 input sets)."""

from repro.experiments import fig_4_1
from conftest import run_and_print


def test_fig_4_1(benchmark, bench_context):
    table = run_and_print(benchmark, fig_4_1.run, bench_context)
    # Shape: most coordinates in the lowest intervals.
    for row in table.rows:
        name, *bins = row
        assert sum(bins[:3]) > 50.0, name
