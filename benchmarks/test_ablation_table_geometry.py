"""Bench: table-size sweep (pressure ablation from DESIGN.md)."""

from conftest import run_and_print
from repro.experiments import ablation_table_geometry


def test_ablation_table_geometry(benchmark, bench_context):
    table = run_and_print(benchmark, ablation_table_geometry.run, bench_context)
    # Shape: for every benchmark, more capacity never hurts the hardware
    # scheme badly, and at the smallest table the profile scheme's
    # admission control is at its most valuable.
    by_key = {}
    for row in table.rows:
        by_key[(row[0], row[1])] = row[2:]
    for (name, scheme), series in by_key.items():
        assert series[-1] >= series[0] * 0.95, (name, scheme)
