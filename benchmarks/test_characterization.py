"""Bench: workload characterization table (Table 4.1 context)."""

from conftest import run_and_print
from repro.experiments import characterization


def test_characterization(benchmark, bench_context):
    table = run_and_print(benchmark, characterization.run, bench_context)
    rows = table.row_map("benchmark")
    assert len(rows) == 13
    # gcc must be the table-pressure benchmark: the largest candidate
    # footprint, beyond the 512-entry prediction table.
    footprints = {name: row[8] for name, row in rows.items()}
    assert footprints["126.gcc"] == max(footprints.values())
    assert footprints["126.gcc"] > 512
    # FP workloads actually execute FP work.
    for name in ("101.tomcatv", "102.swim", "103.su2cor", "104.hydro2d",
                 "107.mgrid"):
        assert rows[name][3] > 0.0, name
