"""Bench: profile-guided critical-path study (Section 6 future work)."""

from conftest import run_and_print
from repro.experiments import extension_critical_path


def test_extension_critical_path(benchmark, bench_context):
    table = run_and_print(benchmark, extension_critical_path.run, bench_context)
    for row in table.rows:
        name, _blocks, plain, at90, at50, short90, short50 = row
        # Collapsing edges can only shorten paths, and the looser
        # threshold collapses at least as much.
        assert at90 <= plain and at50 <= at90 + 1e-9, name
        assert short50 >= short90 - 1e-9, name
        assert 0.0 <= short90 <= 100.0
    # The study is non-trivial: on average a visible chunk of the path
    # disappears at the loose threshold.
    mean_short = sum(row[5] for row in table.rows) / len(table.rows)
    assert mean_short > 5.0
