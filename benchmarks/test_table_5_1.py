"""Bench: regenerate Table 5.1 (allocation candidates vs counters)."""

from conftest import run_and_print
from repro.experiments import table_5_1


def test_table_5_1(benchmark, bench_context):
    table = run_and_print(benchmark, table_5_1.run, bench_context)
    average = table.row_map("benchmark")["average"][1:]
    # Shape: the admitted fraction grows monotonically as the threshold
    # loosens, and stays well below 100% (paper: 24% -> 47%).
    assert average == sorted(average)
    assert average[-1] < 90.0
    assert average[0] < average[-1]
