"""Bench: abstract-machine parameter sensitivity (window, penalty)."""

from conftest import run_and_print
from repro.experiments import ablation_ilp_machine
from repro.experiments.ablation_ilp_machine import PENALTIES, WINDOWS


def test_ablation_ilp_machine(benchmark, bench_context):
    table = run_and_print(benchmark, ablation_ilp_machine.run, bench_context)
    n_windows = len(WINDOWS)
    for row in table.rows:
        name = row[0]
        window_gains = row[2 : 2 + n_windows]
        penalty_gains = row[2 + n_windows :]
        # VP helps at every machine point.
        assert all(gain > 0 for gain in window_gains), name
        # A harsher penalty never increases the gain.
        assert penalty_gains[0] >= penalty_gains[-1] - 1e-9, name
