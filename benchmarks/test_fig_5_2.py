"""Bench: regenerate Figure 5.2 (% correct predictions classified correctly)."""

from conftest import run_and_print
from repro.experiments import fig_5_2


def test_fig_5_2(benchmark, bench_context):
    table = run_and_print(benchmark, fig_5_2.run, bench_context)
    average = table.row_map("benchmark")["average"]
    fsm, prof90, *_rest, prof50 = average[1:]
    # Shape: the trade-off's other side — loosening the threshold keeps
    # more correct predictions; the FSM is competitive here.
    assert prof50 >= prof90
    assert fsm >= prof90
