"""Bench: regenerate Figure 2.2 (prediction-accuracy distribution)."""

from repro.experiments import fig_2_2
from conftest import run_and_print


def test_fig_2_2(benchmark, bench_context):
    table = run_and_print(benchmark, fig_2_2.run, bench_context)
    # Shape: bimodal — the two extreme intervals dominate the middle on
    # average (paper: ~30% above 90% accuracy, ~40% below 10%).
    lows = table.column("[0,10]")
    highs = table.column("(90,100]")
    middles = [
        sum(row[2:-1]) / len(row[2:-1]) for row in table.rows
    ]
    average_extreme = (sum(lows) + sum(highs)) / (2 * len(lows))
    average_middle = sum(middles) / len(middles)
    assert average_extreme > average_middle
