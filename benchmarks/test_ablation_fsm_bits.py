"""Bench: saturating-counter width sweep (DESIGN.md ablation)."""

from conftest import run_and_print
from repro.experiments import ablation_fsm_bits


def test_ablation_fsm_bits(benchmark, bench_context):
    table = run_and_print(benchmark, ablation_fsm_bits.run, bench_context)
    rows = table.row_map("counter")
    # Shape: narrow counters react after a single miss, so they suppress
    # mispredictions at least as well as wide ones; wide counters' extra
    # hysteresis protects the kept-correct side instead.
    assert rows["1-bit"][1] >= rows["3-bit"][1]
    assert rows["3-bit"][2] >= rows["1-bit"][2] - 1.0
    for row in table.rows:
        assert 0.0 <= row[1] <= 100.0 and 0.0 <= row[2] <= 100.0
