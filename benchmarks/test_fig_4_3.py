"""Bench: regenerate Figure 4.3 (M(S)average across 5 input sets)."""

from repro.experiments import fig_4_3
from conftest import run_and_print


def test_fig_4_3(benchmark, bench_context):
    table = run_and_print(benchmark, fig_4_3.run, bench_context)
    for row in table.rows:
        name, low, *rest = row
        assert low > 50.0, name
