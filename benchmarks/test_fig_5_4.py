"""Bench: regenerate Figure 5.4 (increase in incorrect predictions)."""

from conftest import run_and_print
from repro.experiments import fig_5_4


def test_fig_5_4(benchmark, bench_context):
    table = run_and_print(benchmark, fig_5_4.run, bench_context)
    # Shape: at the strict 90% threshold the profile scheme *reduces*
    # mispredictions in nearly every benchmark.
    reductions = [row[1] for row in table.rows]
    assert sum(1 for delta in reductions if delta < 0) >= len(reductions) - 2
