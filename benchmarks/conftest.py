"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures through
:mod:`repro.experiments`.  A session-scoped context shares the expensive
artifacts (compiled binaries, training profiles, annotated binaries)
across benches; ``--scale`` style tuning is exposed through the
``REPRO_BENCH_SCALE`` environment variable (default 0.15 — large enough
for stable shapes, small enough to keep the suite in minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentContext

DEFAULT_SCALE = 0.15


@pytest.fixture(scope="session")
def bench_context():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    return ExperimentContext(scale=scale)


def run_and_print(benchmark, run, context):
    """Time one run of an experiment and print its table."""
    table = benchmark.pedantic(run, args=(context,), iterations=1, rounds=1)
    print()
    print(table.format())
    return table
