"""Bench: predictor-family comparison (extension ablation)."""

from conftest import run_and_print
from repro.experiments import ablation_predictors


def test_ablation_predictors(benchmark, bench_context):
    table = run_and_print(benchmark, ablation_predictors.run, bench_context)
    for row in table.rows:
        name, last_value, stride, two_delta, _fcm = row
        # Stride dominates last-value (it subsumes it: zero strides).
        assert stride >= last_value - 1.0, name
        # Two-delta stays in stride's neighbourhood.
        assert abs(stride - two_delta) < 25.0, name
