"""Bench: stride-directive split sweep (DESIGN.md ablation)."""

from conftest import run_and_print
from repro.experiments import ablation_stride_threshold


def test_ablation_stride_threshold(benchmark, bench_context):
    table = run_and_print(benchmark, ablation_stride_threshold.run, bench_context)
    # Shape: the stride-efficiency distribution is bimodal, so the
    # directive mix barely moves across the middle splits (30..70).
    middle = [row for row in table.rows if 30.0 <= row[0] <= 70.0]
    stride_counts = [row[1] for row in middle]
    assert max(stride_counts) - min(stride_counts) <= 0.2 * max(stride_counts)
    # Total tags are constant: the accuracy threshold alone decides them.
    totals = {row[1] + row[2] for row in table.rows}
    assert len(totals) == 1
