"""Bench: regenerate Table 5.2 (ILP increase on the abstract machine)."""

from conftest import run_and_print
from repro.experiments import table_5_2
from repro.workloads import TABLE_4_1_NAMES


def test_table_5_2(benchmark, bench_context):
    table = run_and_print(benchmark, table_5_2.run, bench_context)
    rows = table.row_map("benchmark")
    wins = 0
    for name in TABLE_4_1_NAMES:
        _name, sc, *profile_columns = rows[name]
        assert sc > 0.0, f"{name}: value prediction should increase ILP"
        if max(profile_columns) >= sc:
            wins += 1
    # Shape: the profile scheme can be tuned to match or beat the
    # hardware scheme "in most benchmarks".
    assert wins >= len(TABLE_4_1_NAMES) // 2 + 1
    # Shape: the highly repetitive benchmarks gain the most (the paper's
    # outlier is m88ksim at 593%; in this substrate m88ksim stays among
    # the top gainers while li and mgrid sit at the bottom, as in the
    # paper's 11%/24% rows).
    gains = {name: max(rows[name][1:]) for name in TABLE_4_1_NAMES}
    ranked = sorted(gains.values())
    assert gains["124.m88ksim"] >= ranked[-4]
    assert gains["130.li"] <= ranked[2]
