"""Bench: regenerate Figure 5.3 (increase in correct predictions)."""

from conftest import run_and_print
from repro.experiments import fig_5_3


def test_fig_5_3(benchmark, bench_context):
    table = run_and_print(benchmark, fig_5_3.run, bench_context)
    rows = table.row_map("benchmark")
    # Shape: the benefit concentrates in the large-working-set
    # benchmarks; gcc (1600+ live candidates vs 512 entries) must find a
    # threshold that *gains* correct predictions over the counters.
    assert max(rows["126.gcc"][1:]) > 0.0
