"""Bench: regenerate Figure 5.1 (% mispredictions classified correctly)."""

from conftest import run_and_print
from repro.experiments import fig_5_1


def test_fig_5_1(benchmark, bench_context):
    table = run_and_print(benchmark, fig_5_1.run, bench_context)
    average = table.row_map("benchmark")["average"]
    fsm, prof90, *_rest, prof50 = average[1:]
    # Shape: profile@90 suppresses more mispredictions than the FSM, and
    # the accuracy decays as the threshold loosens.
    assert prof90 >= fsm
    assert prof90 >= prof50
